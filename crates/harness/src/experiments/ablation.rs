//! Ablations of the design choices DESIGN.md calls out: history-table
//! size, `P_base` exponent, CaPRoMi's lock threshold, and FIFO-vs-none
//! history (disabling the table shows what the "time-varying probability
//! alone" would cost).

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::MeanStd;
use crate::runner::Runner;
use crate::table::TextTable;
use crate::{parallel, scenario};
use tivapromi::{HistoryPolicy, TivaConfig, TivaVariant};

/// One ablation cell.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Which sweep this cell belongs to.
    pub sweep: &'static str,
    /// Variant under test.
    pub variant: TivaVariant,
    /// Parameter value.
    pub value: String,
    /// Storage per bank, bytes.
    pub storage_bytes: f64,
    /// Overhead % across seeds.
    pub overhead: MeanStd,
    /// Worst attack margin across seeds — lower overhead with a *worse*
    /// margin means triggers were missed, not saved.
    pub margin: f64,
    /// Flips across seeds.
    pub flips: usize,
}

fn sweep_one(
    sweep: &'static str,
    variant: TivaVariant,
    value: String,
    tiva: TivaConfig,
    config: &RunConfig,
    seeds: u32,
) -> AblationResult {
    let runs = parallel::map((1..=u64::from(seeds)).collect(), |seed| {
        let trace = scenario::paper_mix(config, seed);
        Runner::new(config.clone())
            .technique((variant, tiva))
            .seed(seed)
            .run(trace)
    });
    let overheads: Vec<f64> = runs.iter().map(|m| m.overhead_percent()).collect();
    AblationResult {
        sweep,
        variant,
        value,
        storage_bytes: runs.first().map_or(0.0, |m| m.storage_bytes_per_bank),
        overhead: MeanStd::of(&overheads),
        margin: runs.iter().map(|m| m.attack_margin()).fold(0.0, f64::max),
        flips: runs.iter().map(|m| m.flips).sum(),
    }
}

/// History-table size sweep (paper value: 32) for LoLiPRoMi.
pub fn history_sweep(scale: &ExperimentScale) -> Vec<AblationResult> {
    let config = RunConfig::paper(scale);
    let base = TivaConfig::paper(&config.geometry);
    [4usize, 8, 16, 32, 64, 128]
        .iter()
        .map(|&entries| {
            sweep_one(
                "history entries",
                TivaVariant::LoLiPromi,
                entries.to_string(),
                base.with_history_entries(entries),
                &config,
                scale.seeds,
            )
        })
        .collect()
}

/// `P_base` exponent sweep (paper value: 23) for LiPRoMi.
pub fn p_base_sweep(scale: &ExperimentScale) -> Vec<AblationResult> {
    let config = RunConfig::paper(scale);
    let base = TivaConfig::paper(&config.geometry);
    (21u32..=25)
        .map(|exp| {
            sweep_one(
                "P_base exponent",
                TivaVariant::LiPromi,
                format!("2^-{exp}"),
                base.with_p_base_exponent(exp),
                &config,
                scale.seeds,
            )
        })
        .collect()
}

/// CaPRoMi lock-threshold sweep (default 16).
pub fn lock_threshold_sweep(scale: &ExperimentScale) -> Vec<AblationResult> {
    let config = RunConfig::paper(scale);
    let base = TivaConfig::paper(&config.geometry);
    [2u32, 4, 8, 16, 32, 64]
        .iter()
        .map(|&th| {
            sweep_one(
                "lock threshold",
                TivaVariant::CaPromi,
                th.to_string(),
                base.with_lock_threshold(th),
                &config,
                scale.seeds,
            )
        })
        .collect()
}

/// Counter-table size sweep (paper value: 64) for CaPRoMi.
pub fn counter_table_sweep(scale: &ExperimentScale) -> Vec<AblationResult> {
    let config = RunConfig::paper(scale);
    let base = TivaConfig::paper(&config.geometry);
    [16usize, 32, 64, 128]
        .iter()
        .map(|&entries| {
            sweep_one(
                "counter entries",
                TivaVariant::CaPromi,
                entries.to_string(),
                base.with_counter_entries(entries),
                &config,
                scale.seeds,
            )
        })
        .collect()
}

/// History replacement policy sweep (paper: FIFO) for LoLiPRoMi.
pub fn history_policy_sweep(scale: &ExperimentScale) -> Vec<AblationResult> {
    let config = RunConfig::paper(scale);
    let base = TivaConfig::paper(&config.geometry);
    [HistoryPolicy::Fifo, HistoryPolicy::Lru]
        .iter()
        .map(|&policy| {
            sweep_one(
                "history policy",
                TivaVariant::LoLiPromi,
                format!("{policy:?}"),
                base.with_history_policy(policy),
                &config,
                scale.seeds,
            )
        })
        .collect()
}

/// Renders ablation cells.
pub fn render(results: &[AblationResult]) -> String {
    let mut table = TextTable::new(vec![
        "sweep",
        "variant",
        "value",
        "storage [B/bank]",
        "overhead [%]",
        "worst margin",
        "flips",
    ]);
    for r in results {
        table.row(vec![
            r.sweep.into(),
            r.variant.to_string(),
            r.value.clone(),
            format!("{:.0}", r.storage_bytes),
            format!("{:.4} ± {:.4}", r.overhead.mean, r.overhead.std),
            format!("{:.0}%", 100.0 * r.margin),
            r.flips.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            windows: 2,
            banks: 1,
            seeds: 1,
        }
    }

    #[test]
    fn history_sweep_changes_storage_monotonically() {
        let results = history_sweep(&tiny());
        assert_eq!(results.len(), 6);
        for pair in results.windows(2) {
            assert!(pair[0].storage_bytes < pair[1].storage_bytes);
        }
        for r in &results {
            assert_eq!(r.flips, 0, "history={}", r.value);
        }
        assert!(render(&results).contains("history entries"));
    }

    #[test]
    fn history_policy_sweep_runs_both_policies() {
        let results = history_policy_sweep(&tiny());
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.flips, 0, "policy={}", r.value);
            // Same table size either way — LRU costs recency state, not
            // entries.
            assert_eq!(r.storage_bytes, 120.0);
        }
    }

    #[test]
    fn p_base_sweep_orders_overhead() {
        // A larger P_base (smaller exponent) triggers more often.
        let results = p_base_sweep(&tiny());
        let first = results.first().unwrap().overhead.mean; // 2^-21
        let last = results.last().unwrap().overhead.mean; // 2^-25
        assert!(first > last, "2^-21 {first} vs 2^-25 {last}");
    }
}
