//! Table III — the full comparison: LUTs (DDR4/DDR3), vulnerability,
//! activation overhead μ ± σ, false-positive rate.
//!
//! LUT columns come from the `rh-hwmodel` area model; the overhead/FPR
//! columns are measured on the mixed trace across seeds; the
//! "Vulnerable" column reports the literature classification (see
//! [`rh_hwmodel::reference`]) — it is a qualitative property of each
//! design (static probabilities beatable by adaptive multi-aggressor
//! patterns for PARA/MRLoc, the slow linear ramp for LiPRoMi) — next to
//! our measured quantitative evidence from the adversarial suite
//! ([`crate::experiments::vulnerability`]).

use crate::config::{ExperimentScale, RunConfig};
use crate::experiments::fig4;
use crate::metrics::MeanStd;
use crate::table::TextTable;
use dram_sim::DramGeneration;
use rh_hwmodel::{area, reference, HwParams, Technique};

/// One regenerated row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Technique.
    pub technique: Technique,
    /// Modelled LUTs targeting DDR4.
    pub luts_ddr4: u64,
    /// Modelled LUTs targeting DDR3.
    pub luts_ddr3: u64,
    /// Literature vulnerability classification.
    pub vulnerable: bool,
    /// Measured overhead μ ± σ (%).
    pub overhead: MeanStd,
    /// Measured FPR μ (%).
    pub fpr: MeanStd,
    /// The paper's row, for side-by-side printing.
    pub paper: reference::Table3Row,
}

/// Regenerates Table III at the given scale.
pub fn run(scale: &ExperimentScale) -> Vec<Table3Result> {
    let points = fig4::run(scale);
    let params = hw_params(&RunConfig::paper(scale));
    points
        .into_iter()
        .map(|p| {
            let paper = *reference::table3_row(p.technique).expect("table3 technique");
            Table3Result {
                technique: p.technique,
                luts_ddr4: area::area(p.technique, &params, DramGeneration::Ddr4).total(),
                luts_ddr3: area::area(p.technique, &params, DramGeneration::Ddr3).total(),
                vulnerable: paper.vulnerable,
                overhead: p.overhead,
                fpr: p.fpr,
                paper,
            }
        })
        .collect()
}

/// Derives the hardware-model parameters from a run configuration.
pub fn hw_params(config: &RunConfig) -> HwParams {
    let g = &config.geometry;
    let mut params = HwParams::paper();
    params.banks = g.banks();
    params.row_bits = u32::BITS - (g.rows_per_bank() - 1).leading_zeros();
    params.interval_bits = u32::BITS - (g.intervals_per_window() - 1).leading_zeros();
    params.cra_counters = g.rows_per_bank();
    params
}

/// Renders the regenerated table, paper values in brackets.
pub fn render(results: &[Table3Result]) -> String {
    let para_ddr4 = results
        .iter()
        .find(|r| r.technique == Technique::Para)
        .map_or(1, |r| r.luts_ddr4)
        .max(1);
    let mut table = TextTable::new(vec![
        "technique",
        "LUTs DDR4 (model | paper)",
        "rel. PARA",
        "LUTs DDR3 (model | paper)",
        "vulnerable",
        "overhead % (measured | paper)",
        "FPR % (measured | paper)",
    ]);
    for r in results {
        table.row(vec![
            r.technique.to_string(),
            format!("{} | {}", r.luts_ddr4, r.paper.luts_ddr4),
            format!("{:.1}x", r.luts_ddr4 as f64 / para_ddr4 as f64),
            format!("{} | {}", r.luts_ddr3, r.paper.luts_ddr3),
            if r.vulnerable { "Yes" } else { "No" }.into(),
            format!(
                "{:.4} ± {:.4} | {:.4} ± {:.4}",
                r.overhead.mean, r.overhead.std, r.paper.overhead_mean, r.paper.overhead_std
            ),
            format!("{:.4} | {:.3}", r.fpr.mean, r.paper.fpr),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_has_nine_rows_and_sane_columns() {
        let results = run(&ExperimentScale::quick());
        assert_eq!(results.len(), 9);
        for r in &results {
            assert!(r.luts_ddr3 >= r.luts_ddr4, "{}", r.technique);
            assert!(r.overhead.mean >= 0.0);
        }
        // The vulnerability column matches the paper.
        let vulnerable: Vec<Technique> = results
            .iter()
            .filter(|r| r.vulnerable)
            .map(|r| r.technique)
            .collect();
        assert_eq!(
            vulnerable,
            vec![Technique::MrLoc, Technique::Para, Technique::LiPromi]
        );
        assert!(render(&results).contains("PARA"));
    }
}
