//! Fig. 4 — the table-size vs. activation-overhead trade-off of all
//! nine techniques on the mixed workload (SPEC-like load + ramping
//! attacker).
//!
//! The paper plots storage per bank (bytes, log) on x and activation
//! overhead (%, log) on y: the probabilistic cluster (PARA, MRLoc,
//! ProHit) sits at tiny storage / high overhead, the tabled counters
//! (TWiCe, CRA) at huge storage / tiny overhead, and the four TiVaPRoMi
//! variants in between — Pareto-optimal compromises.

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::{MeanStd, RunMetrics};
use crate::runner::Runner;
use crate::table::TextTable;
use crate::{parallel, scenario};
use rh_hwmodel::Technique;

/// One point of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Technique.
    pub technique: Technique,
    /// Storage per bank in bytes (x-axis).
    pub storage_bytes: f64,
    /// Activation overhead % across seeds (y-axis).
    pub overhead: MeanStd,
    /// False-positive rate % across seeds.
    pub fpr: MeanStd,
    /// Total bit flips across all seeds (must be zero).
    pub flips: usize,
}

/// Runs one technique at one seed on the standard mixed trace.
pub fn run_one(technique: Technique, config: &RunConfig, seed: u64) -> RunMetrics {
    let trace = scenario::paper_mix(config, seed);
    Runner::new(config.clone())
        .technique(technique)
        .seed(seed)
        .run(trace)
}

/// Regenerates all nine Fig. 4 points at the given scale.
pub fn run(scale: &ExperimentScale) -> Vec<Fig4Point> {
    let config = RunConfig::paper(scale);
    let jobs: Vec<(Technique, u64)> = Technique::TABLE3
        .iter()
        .flat_map(|&t| (0..scale.seeds).map(move |s| (t, u64::from(s) + 1)))
        .collect();
    let metrics = parallel::map(jobs, |(t, seed)| (t, run_one(t, &config, seed)));

    Technique::TABLE3
        .iter()
        .map(|&t| {
            let runs: Vec<&RunMetrics> = metrics
                .iter()
                .filter(|(mt, _)| *mt == t)
                .map(|(_, m)| m)
                .collect();
            let overheads: Vec<f64> = runs.iter().map(|m| m.overhead_percent()).collect();
            let fprs: Vec<f64> = runs.iter().map(|m| m.fpr_percent()).collect();
            Fig4Point {
                technique: t,
                storage_bytes: runs.first().map_or(0.0, |m| m.storage_bytes_per_bank),
                overhead: MeanStd::of(&overheads),
                fpr: MeanStd::of(&fprs),
                flips: runs.iter().map(|m| m.flips).sum(),
            }
        })
        .collect()
}

/// Renders the Fig. 4 series as a table (the figure's data points).
pub fn render(points: &[Fig4Point]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "table size/bank [B]",
        "activation overhead [%]",
        "FPR [%]",
        "flips",
    ]);
    for p in points {
        table.row(vec![
            p.technique.to_string(),
            format!("{:.0}", p.storage_bytes),
            format!("{:.4} ± {:.4}", p.overhead.mean, p.overhead.std),
            format!("{:.4}", p.fpr.mean),
            p.flips.to_string(),
        ]);
    }
    table.render()
}

/// The paper's headline claims about Fig. 4, checked against regenerated
/// points.  Returns human-readable verdict lines.
pub fn shape_checks(points: &[Fig4Point]) -> Vec<(String, bool)> {
    let get = |t: Technique| points.iter().find(|p| p.technique == t).expect("present");
    let tiva = [
        Technique::LiPromi,
        Technique::LoPromi,
        Technique::LoLiPromi,
        Technique::CaPromi,
    ];
    let mut checks = Vec::new();

    // TiVaPRoMi overhead below every probabilistic baseline.
    let min_prob = [Technique::Para, Technique::MrLoc, Technique::ProHit]
        .iter()
        .map(|&t| get(t).overhead.mean)
        .fold(f64::INFINITY, f64::min);
    let max_tiva = tiva
        .iter()
        .map(|&t| get(t).overhead.mean)
        .fold(0.0, f64::max);
    checks.push((
        format!(
            "TiVaPRoMi overhead below all probabilistic baselines ({max_tiva:.4}% < {min_prob:.4}%)"
        ),
        max_tiva < min_prob,
    ));

    // Storage 9×–27× below TWiCe.
    let twice = get(Technique::TwiCe).storage_bytes;
    let ratios: Vec<f64> = tiva.iter().map(|&t| twice / get(t).storage_bytes).collect();
    let min_ratio = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max_ratio = ratios.iter().copied().fold(0.0, f64::max);
    checks.push((
        format!("storage {min_ratio:.1}×–{max_ratio:.1}× below TWiCe (paper: 9×–27×)"),
        min_ratio >= 7.0 && max_ratio <= 40.0,
    ));

    // Tabled counters keep the lowest overhead overall.
    let tabled = get(Technique::TwiCe)
        .overhead
        .mean
        .min(get(Technique::Cra).overhead.mean);
    checks.push((
        format!("tabled counters have the lowest overhead ({tabled:.4}%)"),
        tiva.iter().all(|&t| get(t).overhead.mean >= tabled),
    ));

    // Nobody lets an attack through.
    let flips: usize = points.iter().map(|p| p.flips).sum();
    checks.push((
        format!("no bit flips under any technique ({flips})"),
        flips == 0,
    ));

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_produces_nine_points() {
        let points = run(&ExperimentScale::quick());
        assert_eq!(points.len(), 9);
        for p in &points {
            assert_eq!(p.flips, 0, "{} let an attack through", p.technique);
            assert!(p.overhead.mean >= 0.0);
        }
        let s = render(&points);
        assert!(s.contains("TWiCe"));
    }
}
