//! Blast-radius extension study (beyond the paper's evaluation).
//!
//! The paper — like its baselines — models disturbance as strictly
//! nearest-neighbor, and its `act_n` restores only the rows at distance
//! one.  Measurements on modern dense DRAM show *second-order* coupling:
//! an activation also disturbs the rows two away, at a fraction of the
//! nearest-neighbor strength.  Once that fraction is large enough
//! (`≥ 139 K / (165 · 8192) ≈ 10.3 %` at the full flooding rate), a
//! distance-2 victim can cross the flip threshold within one refresh
//! window while *no ±1-refresh-based mitigation ever restores it* — a
//! blind spot shared by every technique in the paper's comparison.
//!
//! The experiment floods one row at couplings of 0 %, 12.5 % and 25 %
//! against a representative technique set, with and without the
//! [`tivapromi::WideNeighborhood`] adapter that widens `act_n` to ±2,
//! and reports who flips.

use crate::config::{ExperimentScale, RunConfig};
use crate::table::TextTable;
use crate::{engine, parallel, scenario, techniques};
use dram_sim::RowAddr;
use rh_hwmodel::Technique;
use tivapromi::{Mitigation, WideNeighborhood};

/// Distance-2 couplings swept, in sixteenths (0 %, 12.5 %, 25 %).
pub const COUPLINGS: [u32; 3] = [0, 2, 4];

/// Result of one (technique, coupling, wide?) cell.
#[derive(Debug, Clone)]
pub struct BlastRadiusResult {
    /// Technique name (with `+d2` suffix when widened).
    pub technique: String,
    /// Distance-2 coupling in sixteenths.
    pub coupling_sixteenths: u32,
    /// Bit flips across seeds.
    pub flips: usize,
    /// Worst margin (max disturbance / threshold).
    pub margin: f64,
    /// Mean activation overhead % (the price of widening).
    pub overhead: f64,
}

/// Representative techniques: the paper's best compromise, the tabled
/// counter, and the stateless baseline.
const UNDER_TEST: [Technique; 3] = [Technique::LoLiPromi, Technique::TwiCe, Technique::Para];

fn build(technique: Technique, config: &RunConfig, seed: u64, wide: bool) -> Box<dyn Mitigation> {
    let inner = techniques::build(technique, config, seed);
    if wide {
        Box::new(WideNeighborhood::new(
            inner,
            config.geometry.rows_per_bank(),
        ))
    } else {
        inner
    }
}

/// Runs the coupling × technique × widening sweep under worst-phase
/// flooding.
pub fn run(scale: &ExperimentScale) -> Vec<BlastRadiusResult> {
    let base = {
        let mut c = RunConfig::paper(scale);
        c.windows = c.windows.min(2);
        c
    };
    let jobs: Vec<(Technique, u32, bool, u64)> = UNDER_TEST
        .iter()
        .flat_map(|&t| {
            COUPLINGS.iter().flat_map(move |&d2| {
                [false, true].into_iter().flat_map(move |wide| {
                    (1..=u64::from(scale.seeds.max(2))).map(move |s| (t, d2, wide, s))
                })
            })
        })
        .collect();
    let runs = parallel::map(jobs, |(t, d2, wide, seed)| {
        let mut config = base.clone();
        config.distance2_sixteenths = d2;
        let trace = scenario::flooding(&config, RowAddr(100));
        let metrics = engine::run_sharded(trace, &|| build(t, &config, seed, wide), &config);
        (t, d2, wide, metrics)
    });

    UNDER_TEST
        .iter()
        .flat_map(|&t| {
            COUPLINGS
                .iter()
                .flat_map(move |&d2| [false, true].into_iter().map(move |w| (t, d2, w)))
        })
        .map(|(t, d2, wide)| {
            let cell: Vec<_> = runs
                .iter()
                .filter(|(rt, rd, rw, _)| *rt == t && *rd == d2 && *rw == wide)
                .collect();
            BlastRadiusResult {
                technique: if wide {
                    format!("{}+d2", t.name())
                } else {
                    t.name().to_string()
                },
                coupling_sixteenths: d2,
                flips: cell.iter().map(|(_, _, _, m)| m.flips).sum(),
                margin: cell
                    .iter()
                    .map(|(_, _, _, m)| m.attack_margin())
                    .fold(0.0, f64::max),
                overhead: cell
                    .iter()
                    .map(|(_, _, _, m)| m.overhead_percent())
                    .sum::<f64>()
                    / cell.len() as f64,
            }
        })
        .collect()
}

/// Renders the blast-radius table.
pub fn render(results: &[BlastRadiusResult]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "d2 coupling",
        "flips",
        "worst margin",
        "overhead [%]",
    ]);
    for r in results {
        table.row(vec![
            r.technique.clone(),
            format!("{:.1}%", 100.0 * f64::from(r.coupling_sixteenths) / 16.0),
            r.flips.to_string(),
            format!("{:.0}%", 100.0 * r.margin),
            format!("{:.4}", r.overhead),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_act_n_closes_the_distance2_blind_spot() {
        let mut scale = ExperimentScale::quick();
        scale.seeds = 1;
        let results = run(&scale);
        let get = |name: &str, d2: u32| {
            results
                .iter()
                .find(|r| r.technique == name && r.coupling_sixteenths == d2)
                .expect("cell present")
        };
        // No coupling: everything holds either way.
        assert_eq!(get("TWiCe", 0).flips, 0);
        assert_eq!(get("LoLiPRoMi", 0).flips, 0);
        // 25 % coupling defeats the ±1-only techniques under flooding…
        assert!(get("TWiCe", 4).flips > 0, "TWiCe blind spot");
        assert!(get("LoLiPRoMi", 4).flips > 0, "LoLiPRoMi blind spot");
        // …and the widened variants restore protection.
        assert_eq!(get("TWiCe+d2", 4).flips, 0);
        assert_eq!(get("LoLiPRoMi+d2", 4).flips, 0);
        // Widening costs extra activations.
        assert!(get("TWiCe+d2", 4).overhead > get("TWiCe", 4).overhead);
        assert!(render(&results).contains("d2 coupling"));
    }
}
