//! Table I — simulated system specifications.

use crate::config::{table1_rows, ExperimentScale};
use crate::table::TextTable;

/// Renders Table I for the given scale.
pub fn render(scale: &ExperimentScale) -> String {
    let mut table = TextTable::new(vec!["parameter", "value"]);
    for (k, v) in table1_rows(scale) {
        table.row(vec![k, v]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_parameters() {
        let s = render(&ExperimentScale::full());
        assert!(s.contains("refresh window"));
        assert!(s.contains("139 K"));
        assert!(s.lines().count() > 10);
    }
}
