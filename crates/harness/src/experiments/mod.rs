//! One module per paper table/figure, plus the ablations.
//!
//! Every experiment follows the same pattern: a `run(scale)` function
//! returning structured results, and a `render(results)` function
//! producing the text table the corresponding binary prints.

pub mod ablation;
pub mod aggressor_sweep;
pub mod blast_radius;
pub mod extensions;
pub mod fig4;
pub mod flooding;
pub mod latency;
pub mod redteam;
pub mod refresh_policies;
pub mod reliability;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod vulnerability;
pub mod weak_dram;
