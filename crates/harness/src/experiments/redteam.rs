//! Red-team attack catalog × the nine Table III techniques.
//!
//! The full adaptive search lives in the `rh-redteam` crate; this
//! experiment runs its *static* attack catalog — the paper's ramp,
//! double-sided hammering, the phase-shifted relocating ramp and the
//! refresh-synchronized burst — against every technique at a fixed
//! attacker budget, under the weakened-cell flip threshold the search
//! uses.  It answers the coarse question the frontier search refines:
//! which attack shapes does each technique stop outright, and which
//! already flip bits at this budget?

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::RunMetrics;
use crate::table::TextTable;
use crate::{parallel, Parallelism, Runner};
use dram_sim::{BankId, Geometry, RowAddr};
use mem_trace::{AttackConfig, AttackKind, Attacker};
use rh_hwmodel::Technique;

/// The weakened-cell flip threshold of the red-team configuration
/// (the `rh-redteam` crate's quick search uses the same value).
pub const REDTEAM_FLIP_THRESHOLD: u32 = 2048;

/// Base aggressor row of every catalog attack.
const BASE_ROW: u32 = 200;

/// One catalog attack under one technique.
#[derive(Debug, Clone)]
pub struct RedteamResult {
    /// Technique name.
    pub technique: String,
    /// Catalog attack name.
    pub attack: &'static str,
    /// Bit flips at this budget.
    pub flips: usize,
    /// The run's metrics.
    pub metrics: RunMetrics,
}

/// The red-team run configuration: 1/64 geometry and the weakened
/// flip threshold, sized by `scale.windows`.
pub fn config(scale: &ExperimentScale) -> RunConfig {
    let mut config = RunConfig::paper(scale);
    config.geometry = Geometry::scaled_down(64);
    config.flip_threshold = REDTEAM_FLIP_THRESHOLD;
    config
}

/// The static attack catalog at a fixed budget of 32 activations per
/// bank-interval.
pub fn catalog(config: &RunConfig) -> Vec<(&'static str, AttackConfig)> {
    let intervals = config.intervals();
    let ipw = u64::from(config.geometry.intervals_per_window());
    let base = AttackConfig {
        kind: AttackKind::DoubleSided {
            victim: RowAddr(BASE_ROW + 1),
        },
        target_banks: vec![BankId(0)],
        acts_per_interval: 32,
        start_interval: 0,
        intervals,
        ramp_hold_intervals: 0,
    };
    vec![
        (
            "static-ramp",
            AttackConfig {
                kind: AttackKind::MultiAggressorRamp {
                    base_row: RowAddr(BASE_ROW),
                    max_aggressors: 20,
                },
                ramp_hold_intervals: (intervals / 20).max(ipw),
                ..base.clone()
            },
        ),
        ("double-sided", base.clone()),
        (
            "shifted-ramp",
            AttackConfig {
                kind: AttackKind::PhaseShifted {
                    base_row: RowAddr(BASE_ROW),
                    max_aggressors: 20,
                    shift_intervals: ipw / 4,
                },
                ..base.clone()
            },
        ),
        (
            "burst",
            AttackConfig {
                kind: AttackKind::RefreshSyncBurst {
                    base_row: RowAddr(BASE_ROW),
                    pairs: 1,
                    duty_intervals: ipw / 2,
                    period_intervals: ipw,
                    phase: ipw / 4,
                },
                ..base
            },
        ),
    ]
}

/// Runs the catalog against all nine techniques.
pub fn run(scale: &ExperimentScale) -> Vec<RedteamResult> {
    let config = config(scale).with_parallelism(Parallelism::sequential());
    let mut jobs = Vec::new();
    for technique in Technique::TABLE3 {
        for (name, attack) in catalog(&config) {
            jobs.push((technique, name, attack));
        }
    }
    parallel::map(jobs, |(technique, name, attack)| {
        let metrics = Runner::new(config.clone())
            .technique(technique)
            .seed(1)
            .run(Attacker::new(attack));
        RedteamResult {
            technique: metrics.technique.clone(),
            attack: name,
            flips: metrics.flips,
            metrics,
        }
    })
}

/// Renders the catalog grid.
pub fn render(results: &[RedteamResult]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "attack",
        "bit flips",
        "first flip @ act",
        "evasion",
        "flips / M act",
        "attack margin",
    ]);
    for r in results {
        table.row(vec![
            r.technique.clone(),
            r.attack.to_string(),
            r.flips.to_string(),
            r.metrics
                .time_to_first_flip
                .map_or_else(|| "-".into(), |a| a.to_string()),
            format!("{:.1}%", r.metrics.evasion_percent()),
            format!("{:.1}", r.metrics.flips_per_mega_act()),
            format!("{:.2}", r.metrics.attack_margin()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_grid_covers_all_techniques_and_attacks() {
        let results = run(&ExperimentScale::quick());
        assert_eq!(results.len(), 9 * 4);
        let techniques: std::collections::HashSet<&str> =
            results.iter().map(|r| r.technique.as_str()).collect();
        assert_eq!(techniques.len(), 9);
        // At the weakened threshold, the synchronized burst flips bits
        // under at least one technique — the grid is not vacuous.
        assert!(
            results.iter().any(|r| r.attack == "burst" && r.flips > 0),
            "burst should breach some technique at threshold {REDTEAM_FLIP_THRESHOLD}"
        );
        let text = render(&results);
        assert!(text.contains("burst"));
        assert!(text.contains("static-ramp"));
        assert!(text.contains("evasion"));
    }
}
