//! Demand-latency impact of mitigation traffic (extension study).
//!
//! Fig. 4's activation overhead becomes a *performance* cost only
//! through controller arbitration: every extra activation occupies a
//! bank for `tRC` and can delay queued demand requests.  This experiment
//! replays the mixed trace through the cycle-level
//! [`dram_sim::controller::MemoryController`], with each technique's
//! actions routed through the Fig. 1 mitigation buffer, and reports the
//! mean demand latency against an unprotected baseline.
//!
//! Expectation (and measurement): at ≤ 0.4 % activation overhead and
//! background priority the slowdown is fractions of a percent — the
//! paper's "performance penalty" argument is about the *rate* of extra
//! activations precisely because each one is individually cheap.

use crate::config::{ExperimentScale, RunConfig};
use crate::table::TextTable;
use crate::{parallel, scenario, techniques};
use dram_sim::controller::{ControllerConfig, MemoryController, MitigationPriority, Request};
use dram_sim::RowAddr;
use mem_trace::{TraceEvent, TraceSource};
use rh_hwmodel::Technique;
use tivapromi::{Mitigation, MitigationAction};

/// Latency result for one configuration.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Technique name ("unprotected" baseline, or `name @urgent`).
    pub technique: String,
    /// Mean demand latency in controller cycles.
    pub mean_latency: f64,
    /// Worst demand latency in cycles.
    pub max_latency: u64,
    /// Slowdown vs. the unprotected baseline, percent.
    pub slowdown_percent: f64,
    /// Mitigation activations issued by the controller.
    pub mitigation_activations: u64,
    /// Demand-stall cycles attributed to mitigation bank occupancy.
    pub mitigation_stall_cycles: u64,
}

fn route_actions(
    actions: &mut Vec<MitigationAction>,
    mc: &mut MemoryController,
    rows_per_bank: u32,
) {
    for action in actions.drain(..) {
        match action {
            MitigationAction::ActivateNeighbors { bank, row } => {
                if row.0 > 0 {
                    mc.enqueue_mitigation(bank, RowAddr(row.0 - 1));
                }
                if row.0 + 1 < rows_per_bank {
                    mc.enqueue_mitigation(bank, RowAddr(row.0 + 1));
                }
            }
            MitigationAction::RefreshRow { bank, row } => {
                mc.enqueue_mitigation(bank, row);
            }
        }
    }
}

/// Replays the trace through the controller with `mitigation` attached.
pub fn simulate(
    config: &RunConfig,
    mitigation: Option<&mut dyn Mitigation>,
    priority: MitigationPriority,
    intervals: u64,
    seed: u64,
) -> dram_sim::controller::LatencyStats {
    let controller_config = ControllerConfig::from_timing(&config.timing).with_priority(priority);
    let mut mc = MemoryController::new(config.geometry, controller_config);
    let mut trace = scenario::paper_mix(config, seed);
    let mut mitigation = mitigation;
    let rows = config.geometry.rows_per_bank();
    let t_refi = controller_config.t_refi;

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut actions: Vec<MitigationAction> = Vec::new();
    let mut base_cycle = 0u64;
    for _ in 0..intervals {
        events.clear();
        if !trace.next_interval(&mut events) {
            break;
        }
        // Spread the interval's demand arrivals uniformly over tREFI.
        let spacing = t_refi / (events.len() as u64 + 1).max(1);
        for (k, event) in events.iter().enumerate() {
            let arrival = base_cycle + spacing * (k as u64 + 1);
            mc.enqueue_demand(Request {
                bank: event.bank,
                row: event.row,
                arrival_cycle: arrival,
            });
            if let Some(m) = mitigation.as_deref_mut() {
                m.on_activate(event.bank, event.row, &mut actions);
                route_actions(&mut actions, &mut mc, rows);
            }
        }
        mc.run_until(base_cycle + t_refi);
        if let Some(m) = mitigation.as_deref_mut() {
            m.on_refresh_interval(&mut actions);
            route_actions(&mut actions, &mut mc, rows);
        }
        base_cycle += t_refi;
    }
    mc.drain(base_cycle);
    mc.stats()
}

/// Runs the latency comparison: unprotected baseline, all nine
/// techniques at background priority, and the paper's best compromise at
/// urgent priority.
pub fn run(scale: &ExperimentScale) -> Vec<LatencyResult> {
    let config = RunConfig::paper(scale);
    // A quarter refresh window of cycle-accurate simulation per run is
    // plenty for stable means and keeps the cycle loop affordable.
    let intervals = (scale.windows * 2048).min(2048);

    #[derive(Clone)]
    enum Job {
        Baseline,
        Tech(Technique, MitigationPriority),
    }
    let mut jobs = vec![Job::Baseline];
    for t in Technique::TABLE3 {
        jobs.push(Job::Tech(t, MitigationPriority::Background));
    }
    jobs.push(Job::Tech(Technique::LoLiPromi, MitigationPriority::Urgent));

    let stats = parallel::map(jobs, |job| match job {
        Job::Baseline => (
            "unprotected".to_string(),
            simulate(&config, None, MitigationPriority::Background, intervals, 1),
        ),
        Job::Tech(t, priority) => {
            let mut m = techniques::build(t, &config, 1);
            let name = match priority {
                MitigationPriority::Background => t.name().to_string(),
                MitigationPriority::Urgent => format!("{} @urgent", t.name()),
            };
            (
                name,
                simulate(&config, Some(m.as_mut()), priority, intervals, 1),
            )
        }
    });

    let baseline = stats
        .iter()
        .find(|(n, _)| n == "unprotected")
        .map(|(_, s)| s.mean_latency())
        .unwrap_or(1.0)
        .max(1e-9);

    stats
        .into_iter()
        .map(|(technique, s)| LatencyResult {
            technique,
            mean_latency: s.mean_latency(),
            max_latency: s.max_latency_cycles,
            slowdown_percent: 100.0 * (s.mean_latency() / baseline - 1.0),
            mitigation_activations: s.mitigation_activations,
            mitigation_stall_cycles: s.mitigation_stall_cycles,
        })
        .collect()
}

/// Renders the latency table.
pub fn render(results: &[LatencyResult]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "mean demand latency [cyc]",
        "max [cyc]",
        "slowdown vs unprotected",
        "mitigation acts",
        "stall cycles",
    ]);
    for r in results {
        table.row(vec![
            r.technique.clone(),
            format!("{:.2}", r.mean_latency),
            r.max_latency.to_string(),
            format!("{:+.3}%", r.slowdown_percent),
            r.mitigation_activations.to_string(),
            r.mitigation_stall_cycles.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdowns_are_small_and_ordered() {
        let mut scale = ExperimentScale::quick();
        scale.windows = 1;
        let results = run(&scale);
        assert_eq!(results.len(), 11);
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.technique == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get("unprotected").slowdown_percent, 0.0);
        // Background-priority TiVaPRoMi costs well under a percent.
        assert!(get("LoLiPRoMi").slowdown_percent.abs() < 1.0);
        // ProHit's higher activation overhead costs more latency than
        // TiVaPRoMi's (both still small).
        assert!(get("ProHit").mitigation_activations > get("LoLiPRoMi").mitigation_activations);
        // Urgent priority can only be as fast or slower for demand.
        assert!(get("LoLiPRoMi @urgent").mean_latency >= get("LoLiPRoMi").mean_latency - 1e-9);
        assert!(render(&results).contains("slowdown"));
    }
}
