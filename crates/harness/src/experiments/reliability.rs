//! §IV reliability check — "For these nine mitigation techniques, no
//! active attacks were successful."
//!
//! Also demonstrates the converse: without mitigation the same trace
//! flips bits, so the check is not vacuous.

use crate::config::{ExperimentScale, RunConfig};
use crate::metrics::RunMetrics;
use crate::table::TextTable;
use crate::{engine, parallel, scenario, techniques};
use dram_sim::{BankId, RowAddr};
use rh_hwmodel::Technique;
use tivapromi::{Mitigation, MitigationAction};

/// A do-nothing mitigation, used to show the attack is real.
#[derive(Debug, Default)]
pub struct Unprotected;

impl Mitigation for Unprotected {
    fn name(&self) -> &str {
        "unprotected"
    }
    fn on_activate(&mut self, _: BankId, _: RowAddr, _: &mut Vec<MitigationAction>) {}
    fn on_refresh_interval(&mut self, _: &mut Vec<MitigationAction>) {}
    fn storage_bits_per_bank(&self) -> u64 {
        0
    }
}

/// Result for one technique.
#[derive(Debug, Clone)]
pub struct ReliabilityResult {
    /// Technique name ("unprotected" for the baseline run).
    pub technique: String,
    /// Bit flips observed.
    pub flips: usize,
    /// Attack margin: max disturbance / threshold.
    pub margin: f64,
    /// The run's metrics.
    pub metrics: RunMetrics,
}

/// Runs the ramping attack trace unprotected and under all nine
/// techniques.
pub fn run(scale: &ExperimentScale) -> Vec<ReliabilityResult> {
    let config = RunConfig::paper(scale);

    let mut jobs: Vec<Option<Technique>> = vec![None];
    jobs.extend(Technique::TABLE3.iter().copied().map(Some));

    parallel::map(jobs, |technique| {
        let trace = scenario::paper_mix(&config, 1);
        let build = || -> Box<dyn Mitigation> {
            match technique {
                None => Box::new(Unprotected),
                Some(t) => techniques::build(t, &config, 1),
            }
        };
        let metrics = engine::run_sharded(trace, &build, &config);
        ReliabilityResult {
            technique: metrics.technique.clone(),
            flips: metrics.flips,
            margin: metrics.attack_margin(),
            metrics,
        }
    })
}

/// Renders the reliability table.
pub fn render(results: &[ReliabilityResult]) -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "bit flips",
        "attack margin",
        "first flip @ act",
    ]);
    for r in results {
        table.row(vec![
            r.technique.clone(),
            r.flips.to_string(),
            format!("{:.1}% of threshold", 100.0 * r.margin),
            r.metrics
                .time_to_first_flip
                .map_or_else(|| "-".into(), |act| act.to_string()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_succeeds_unprotected_and_fails_mitigated() {
        let results = run(&ExperimentScale::quick());
        let unprotected = results
            .iter()
            .find(|r| r.technique == "unprotected")
            .unwrap();
        assert!(unprotected.flips > 0, "the ramp attack must be real");
        for r in results.iter().filter(|r| r.technique != "unprotected") {
            assert_eq!(r.flips, 0, "{} failed to mitigate", r.technique);
            assert!(r.margin < 1.0);
        }
        assert!(render(&results).contains("unprotected"));
    }
}
