//! The [`Runner`] builder: the one documented way to drive a run.
//!
//! The engine module exposes the sharded entrypoints
//! ([`engine::run_sharded`], [`engine::run_observed`]) for callers that
//! build their own mitigation; `Runner` collapses the common path: pick
//! a technique, a seed, a backend fidelity tier, a parallelism policy
//! and any number of observers, then call [`Runner::run`].
//!
//! ```
//! use rh_harness::{Runner, RunConfig, ExperimentScale, scenario, TimeSeriesRecorder};
//! use rh_hwmodel::Technique;
//!
//! let config = RunConfig::paper(&ExperimentScale::quick());
//! let trace = scenario::paper_mix(&config, 1);
//! let metrics = Runner::new(config.clone())
//!     .technique(Technique::Para)
//!     .seed(1)
//!     .observer(TimeSeriesRecorder::new(64))
//!     .run(trace);
//! assert!(metrics.workload_activations > 0);
//! assert!(metrics.timeseries.is_some());
//! ```

use crate::config::{Parallelism, RunConfig};
use crate::engine;
use crate::metrics::RunMetrics;
use crate::observe::{Observe, RunSummary, ShardInfo};
use crate::techniques::{self, TechniqueSpec};
use dram_sim::BackendSpec;
use mem_trace::{ShardError, TraceSource, TraceSplit};
use rh_hwmodel::Technique;
use std::time::Instant;

/// Builder over the run engine: technique, seed, backend tier,
/// parallelism and observers in one place.
///
/// With no observers attached, [`Runner::run`] calls straight into the
/// monomorphised no-observer engine ([`engine::run_sharded`]) — the
/// builder adds nothing to the per-activation path.  Attaching an
/// observer switches to the dynamically-dispatched observed loop.
pub struct Runner {
    config: RunConfig,
    spec: TechniqueSpec,
    seed: u64,
    observers: Vec<Box<dyn Observe>>,
}

impl Runner {
    /// A runner for `config`, defaulting to the paper's headline
    /// technique (LoLiPRoMi), seed 1, the config's parallelism, and no
    /// observers.
    pub fn new(config: RunConfig) -> Self {
        Runner {
            config,
            spec: TechniqueSpec::Paper(Technique::LoLiPromi),
            seed: 1,
            observers: Vec::new(),
        }
    }

    /// Selects the mitigation: a [`Technique`], a
    /// `(TivaVariant, TivaConfig)` pair, or an explicit
    /// [`TechniqueSpec`].
    #[must_use]
    pub fn technique(mut self, spec: impl Into<TechniqueSpec>) -> Self {
        self.spec = spec.into();
        self
    }

    /// Seeds the mitigation's decision streams (default 1).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the config's [`Parallelism`] policy.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Overrides the config's disturbance backend tier (see
    /// [`BackendSpec`] for what each tier guarantees).
    #[must_use]
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.config.backend = backend;
        self
    }

    /// Attaches an [`Observe`] strategy; may be called repeatedly, and
    /// every attached strategy sees every event.
    ///
    /// Strategies with shared state ([`crate::PerfCounters`],
    /// [`crate::DisturbanceHistogram`]) are `Clone`: keep a clone to
    /// read results after the run.
    #[must_use]
    pub fn observer(mut self, observe: impl Observe + 'static) -> Self {
        self.observers.push(Box::new(observe));
        self
    }

    /// The technique spec this runner will build.
    pub fn spec(&self) -> TechniqueSpec {
        self.spec
    }

    /// The run configuration (with any [`Runner::parallelism`] override
    /// applied).
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Drives `trace` through the configured technique, sharding by
    /// bank when the parallelism policy allows it.
    ///
    /// Deterministic: the result is bit-identical for every worker
    /// count, with or without deterministic observers attached.
    pub fn run<S: TraceSplit>(&self, trace: S) -> RunMetrics {
        // Static dispatch: the engine loop matches on [`AnyMitigation`]
        // per interval segment instead of making per-event vtable calls.
        let build = || techniques::build_any(self.spec, &self.config, self.seed);
        if self.observers.is_empty() {
            engine::run_sharded(trace, &build, &self.config)
        } else {
            let observe: &[Box<dyn Observe>] = &self.observers;
            engine::run_with_observed(trace, &build, &self.config, &observe)
        }
    }

    /// Drives a [`TraceSource`] that may or may not support bank
    /// sharding, surfacing the mismatch as a typed error.
    ///
    /// When the parallelism policy asks for a sharded run (`shard_by_bank`
    /// over more than one bank) but the source's
    /// [`TraceSource::shard_support`] refuses — for example
    /// [`mem_trace::CpuWorkload`], whose cores share one RNG and whose
    /// cache hierarchies span every bank — this returns the source's
    /// [`ShardError`] instead of silently running a schedule-dependent
    /// computation.  Callers that accept sequential execution for such
    /// sources should request it explicitly
    /// ([`Parallelism::sequential`], or a single-bank geometry) before
    /// calling.
    ///
    /// # Errors
    ///
    /// The source's [`ShardError`] when a sharded run was requested but
    /// the source cannot be split by bank.
    pub fn run_source<S: TraceSource>(&self, trace: S) -> Result<RunMetrics, ShardError> {
        let sharding_requested =
            self.config.parallelism.shard_by_bank && self.config.geometry.banks() > 1;
        if sharding_requested {
            trace.shard_support()?;
            // The source says sharding would be sound, but a bare
            // `TraceSource` offers no `bank_shard`; that is the
            // `run::<TraceSplit>` path.  This entrypoint exists for
            // sources that *cannot* shard, so a shardable source here
            // still runs sequentially — which the contract guarantees
            // is bit-identical to the sharded run.
        }
        Ok(self.run_sequential(trace))
    }

    /// Drives an unshardable trace ([`TraceSource`] only, e.g. one that
    /// is not `Send`) sequentially, still honouring observers: the
    /// whole run is reported as a single shard.
    pub fn run_sequential<S: TraceSource>(&self, trace: S) -> RunMetrics {
        let mut mitigation = techniques::build_any(self.spec, &self.config, self.seed);
        if self.observers.is_empty() {
            return engine::run_observed(
                trace,
                &mut mitigation,
                &self.config,
                &mut crate::observe::NullObserver,
            );
        }
        let observe: &[Box<dyn Observe>] = &self.observers;
        // lint: allow(D2) — wall time feeds only Observe shard/run
        // callbacks, never RunMetrics.
        let start = Instant::now();
        let shard = ShardInfo::whole_run();
        observe.on_shard_start(&shard);
        let mut observer = observe.observer(&shard);
        let metrics = engine::run_observed(trace, &mut mitigation, &self.config, observer.as_mut());
        observe.on_shard_finish(&shard, &metrics, start.elapsed());
        observe.on_run_end(
            &metrics,
            &RunSummary {
                workers: 1,
                shards: 1,
                elapsed: start.elapsed(),
            },
        );
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use crate::observe::{PerfCounters, TimeSeriesRecorder};
    use crate::scenario;

    fn config() -> RunConfig {
        RunConfig::paper(&ExperimentScale::quick())
    }

    #[test]
    fn runner_matches_direct_engine_call() {
        let config = config();
        let direct = engine::run_sharded(
            scenario::paper_mix(&config, 4),
            &|| techniques::build(Technique::Para, &config, 4),
            &config,
        );
        let built = Runner::new(config.clone())
            .technique(Technique::Para)
            .seed(4)
            .run(scenario::paper_mix(&config, 4));
        assert_eq!(direct, built);
    }

    #[test]
    fn runner_defaults_to_lolipromi_seed_1() {
        let runner = Runner::new(config());
        assert_eq!(runner.spec(), TechniqueSpec::Paper(Technique::LoLiPromi));
        let config = config();
        let metrics = runner.run(scenario::paper_mix(&config, 1));
        assert_eq!(metrics.technique, "LoLiPRoMi");
    }

    #[test]
    fn observers_do_not_perturb_metrics() {
        let config = config();
        let plain = Runner::new(config.clone())
            .technique(Technique::TwiCe)
            .run(scenario::paper_mix(&config, 9));
        let perf = PerfCounters::default();
        let observed = Runner::new(config.clone())
            .technique(Technique::TwiCe)
            .observer(TimeSeriesRecorder::new(32))
            .observer(perf.clone())
            .run(scenario::paper_mix(&config, 9));
        assert!(observed.timeseries.is_some());
        assert_eq!(plain, observed.clone().without_timeseries());
        assert!(!perf.shards().is_empty());
    }

    #[test]
    fn run_sequential_attaches_whole_run_observer() {
        let config = config();
        let metrics = Runner::new(config.clone())
            .observer(TimeSeriesRecorder::new(16))
            .run_sequential(scenario::paper_mix(&config, 2));
        let series = metrics.timeseries.expect("recorder attached");
        assert_eq!(series.stride, 16);
        assert!(!series.points.is_empty());
    }

    #[test]
    fn run_source_rejects_unshardable_trace_under_sharded_policy() {
        use mem_trace::cpu::{CpuWorkload, CpuWorkloadConfig};
        let mut config = config();
        config.geometry = config.geometry.with_banks(4);
        config.parallelism = Parallelism::with_workers(2);
        let cpu = CpuWorkload::new(CpuWorkloadConfig::paper(&config.geometry, 4), 7);
        let err = Runner::new(config)
            .run_source(cpu)
            .expect_err("sharded policy over an unshardable source must fail");
        assert_eq!(err.source, "CpuWorkload");
        assert!(err.to_string().contains("cannot be sharded by bank"));
    }

    #[test]
    fn run_source_accepts_unshardable_trace_sequentially() {
        use mem_trace::cpu::{CpuWorkload, CpuWorkloadConfig};
        let mut config = config();
        config.parallelism = Parallelism::sequential();
        let build = |seed| CpuWorkload::new(CpuWorkloadConfig::paper(&config.geometry, 4), seed);
        let metrics = Runner::new(config.clone())
            .run_source(build(7))
            .expect("sequential policy accepts any source");
        assert_eq!(
            metrics,
            Runner::new(config.clone()).run_sequential(build(7))
        );
        assert!(metrics.workload_activations > 0);
    }

    #[test]
    fn run_source_runs_shardable_traces_like_run_sequential() {
        let config = config();
        let metrics = Runner::new(config.clone())
            .technique(Technique::Para)
            .seed(3)
            .run_source(scenario::paper_mix(&config, 3))
            .expect("shardable sources always pass the policy check");
        let sequential = Runner::new(config.clone())
            .technique(Technique::Para)
            .seed(3)
            .run_sequential(scenario::paper_mix(&config, 3));
        assert_eq!(metrics, sequential);
    }

    #[test]
    fn sequential_and_sharded_observed_runs_agree() {
        let config = config();
        let sharded = Runner::new(config.clone())
            .technique(Technique::Para)
            .seed(2)
            .observer(TimeSeriesRecorder::new(16))
            .run(scenario::paper_mix(&config, 2));
        let sequential = Runner::new(config.clone())
            .technique(Technique::Para)
            .seed(2)
            .observer(TimeSeriesRecorder::new(16))
            .run_sequential(scenario::paper_mix(&config, 2));
        assert_eq!(sharded, sequential);
    }
}
