//! Minimal text-table rendering for the experiment binaries.

/// A simple left-aligned text table.
///
/// ```
/// use rh_harness::TextTable;
/// let mut t = TextTable::new(vec!["technique", "overhead %"]);
/// t.row(vec!["PARA".into(), "0.1".into()]);
/// let s = t.render();
/// assert!(s.contains("PARA"));
/// assert!(s.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', widths[c] - cell.len()));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // "b" column starts at the same offset in every row.
        let col = lines[0].find('b').unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 2], "22");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        TextTable::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }
}
