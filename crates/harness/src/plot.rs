//! Dependency-free SVG rendering of Fig. 4 — the log-log scatter of
//! table size per bank vs. activation overhead.

use crate::experiments::fig4::Fig4Point;
use std::fmt::Write as _;

/// Plot geometry.
const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_LEFT: f64 = 80.0;
const MARGIN_RIGHT: f64 = 30.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 70.0;

/// X-axis range: 10⁰ … 10⁶ bytes (log).
const X_DECADES: (i32, i32) = (0, 6);
/// Y-axis range: 10⁻⁴ … 10⁰ percent (log).
const Y_DECADES: (i32, i32) = (-4, 0);

fn x_of(bytes: f64) -> f64 {
    let logv = bytes
        .max(1.0)
        .log10()
        .clamp(X_DECADES.0 as f64, X_DECADES.1 as f64);
    MARGIN_LEFT
        + (logv - X_DECADES.0 as f64) / f64::from(X_DECADES.1 - X_DECADES.0)
            * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)
}

fn y_of(overhead_percent: f64) -> f64 {
    let logv = overhead_percent
        .max(1e-4)
        .log10()
        .clamp(Y_DECADES.0 as f64, Y_DECADES.1 as f64);
    // SVG y grows downward; high overhead at the top.
    MARGIN_TOP
        + (Y_DECADES.1 as f64 - logv) / f64::from(Y_DECADES.1 - Y_DECADES.0)
            * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)
}

/// Marker colors per technique class (probabilistic / TiVaPRoMi /
/// tabled counters / extensions).
fn color(name: &str) -> &'static str {
    match name {
        "PARA" | "MRLoc" | "ProHit" => "#d62728",
        "TWiCe" | "CRA" => "#1f77b4",
        "CAT" | "Graphene" => "#7f7f7f",
        _ => "#2ca02c", // the TiVaPRoMi variants
    }
}

/// Renders the Fig. 4 scatter as a standalone SVG document.
///
/// ```
/// use rh_harness::experiments::fig4::Fig4Point;
/// use rh_harness::{plot, MeanStd};
/// use rh_hwmodel::Technique;
///
/// let points = vec![Fig4Point {
///     technique: Technique::Para,
///     storage_bytes: 0.0,
///     overhead: MeanStd::of(&[0.1]),
///     fpr: MeanStd::of(&[0.06]),
///     flips: 0,
/// }];
/// let svg = plot::fig4_svg(&points);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("PARA"));
/// ```
pub fn fig4_svg(points: &[Fig4Point]) -> String {
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" text-anchor="middle" font-size="15">Table size per bank vs. activation overhead (Fig. 4)</text>"#,
        WIDTH / 2.0
    );

    // Gridlines + tick labels.
    for d in X_DECADES.0..=X_DECADES.1 {
        let x = x_of(10f64.powi(d));
        let _ = write!(
            svg,
            r##"<line x1="{x:.1}" y1="{MARGIN_TOP}" x2="{x:.1}" y2="{:.1}" stroke="#dddddd"/>"##,
            HEIGHT - MARGIN_BOTTOM
        );
        let _ = write!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">10^{d}</text>"#,
            HEIGHT - MARGIN_BOTTOM + 18.0
        );
    }
    for d in Y_DECADES.0..=Y_DECADES.1 {
        let y = y_of(10f64.powi(d));
        let _ = write!(
            svg,
            r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd"/>"##,
            WIDTH - MARGIN_RIGHT
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">10^{d}</text>"#,
            MARGIN_LEFT - 8.0,
            y + 4.0
        );
    }

    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">table size per bank [B] (log)</text>"#,
        WIDTH / 2.0,
        HEIGHT - 22.0
    );
    let _ = write!(
        svg,
        r#"<text x="20" y="{}" text-anchor="middle" transform="rotate(-90 20 {})">activation overhead [%] (log)</text>"#,
        HEIGHT / 2.0,
        HEIGHT / 2.0
    );

    // Points + labels.
    for p in points {
        let name = p.technique.to_string();
        let x = x_of(p.storage_bytes);
        let y = y_of(p.overhead.mean);
        let c = color(&name);
        let _ = write!(
            svg,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="{c}" stroke="black" stroke-width="0.5"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{name}</text>"#,
            x + 8.0,
            y + 4.0
        );
    }

    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MeanStd;
    use rh_hwmodel::Technique;

    fn point(t: Technique, bytes: f64, overhead: f64) -> Fig4Point {
        Fig4Point {
            technique: t,
            storage_bytes: bytes,
            overhead: MeanStd::of(&[overhead]),
            fpr: MeanStd::of(&[0.0]),
            flips: 0,
        }
    }

    #[test]
    fn axes_are_monotone() {
        assert!(x_of(10.0) < x_of(1000.0));
        // Higher overhead sits higher on the canvas (smaller y).
        assert!(y_of(0.1) < y_of(0.001));
        // Clamping at the range edges.
        assert_eq!(x_of(0.5), x_of(1.0));
        assert_eq!(y_of(1e-7), y_of(1e-4));
    }

    #[test]
    fn svg_contains_every_point_and_is_balanced() {
        let points = vec![
            point(Technique::Para, 0.0, 0.1),
            point(Technique::TwiCe, 3421.0, 0.0017),
            point(Technique::LoLiPromi, 120.0, 0.035),
        ];
        let svg = fig4_svg(&points);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        for p in &points {
            assert!(svg.contains(&p.technique.to_string()));
        }
        assert_eq!(svg.matches("<circle").count(), 3);
        // Balanced text tags.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn classes_get_distinct_colors() {
        assert_ne!(color("PARA"), color("TWiCe"));
        assert_ne!(color("TWiCe"), color("LoLiPRoMi"));
        assert_ne!(color("Graphene"), color("LiPRoMi"));
    }
}
