//! # rh-harness — the experiment engine
//!
//! Everything needed to regenerate the paper's evaluation: the run
//! engine wiring *trace → mitigation → DRAM device*, metric collection
//! (activation overhead, false-positive rate, bit flips, attack
//! margins), multi-seed statistics, and one experiment module per table
//! and figure:
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`experiments::table1`] | Table I — simulated system specification |
//! | [`experiments::table2`] | Table II — FSM clock cycles |
//! | [`experiments::fig4`] | Fig. 4 — table size vs. activation overhead |
//! | [`experiments::table3`] | Table III — LUTs, vulnerability, overhead μ±σ, FPR |
//! | [`experiments::reliability`] | §IV — no attack succeeds under any of the 9 techniques |
//! | [`experiments::refresh_policies`] | §IV — four refresh-order policies |
//! | [`experiments::flooding`] | §IV — flooding first-trigger points |
//! | [`experiments::vulnerability`] | Table III "Vulnerable" column evidence |
//! | [`experiments::ablation`] | design-choice sweeps (history size, `P_base`, lock threshold) |
//!
//! Each experiment has a matching binary (`cargo run --release --bin
//! fig4_tradeoff` etc.) and a Criterion bench in the `rh-bench` crate.
//!
//! ## Example
//!
//! The [`Runner`] builder is the documented entrypoint: pick a
//! technique, a seed, optionally some observers, and run a trace.
//!
//! ```
//! use rh_harness::{Runner, RunConfig, ExperimentScale, scenario, TimeSeriesRecorder};
//! use rh_hwmodel::Technique;
//!
//! // A tiny run: PARA against the mixed workload, 2 windows, 1 bank,
//! // recording the per-interval trajectory every 64 intervals.
//! let scale = ExperimentScale::quick();
//! let config = RunConfig::paper(&scale);
//! let trace = scenario::paper_mix(&config, 1);
//! let metrics = Runner::new(config)
//!     .technique(Technique::Para)
//!     .seed(1)
//!     .observer(TimeSeriesRecorder::new(64))
//!     .run(trace);
//! assert!(metrics.workload_activations > 0);
//! assert!(metrics.timeseries.is_some());
//! ```

pub mod config;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod observe;
pub mod parallel;
pub mod plot;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod table;
pub mod techniques;

pub use config::{ExperimentScale, Parallelism, RunConfig};
pub use dram_sim::BackendSpec;
pub use engine::run_sharded;
pub use metrics::{FlipRecord, MeanStd, RunMetrics, TimePoint, TimeSeries};
pub use observe::{
    DisturbanceHistogram, IntervalSnapshot, NullObserver, Observe, Observer, PerfCounters,
    RunSummary, ShardInfo, TimeSeriesRecorder,
};
pub use runner::Runner;
pub use table::TextTable;
pub use techniques::TechniqueSpec;
