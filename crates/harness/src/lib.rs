//! # rh-harness — the experiment engine
//!
//! Everything needed to regenerate the paper's evaluation: the run
//! engine wiring *trace → mitigation → DRAM device*, metric collection
//! (activation overhead, false-positive rate, bit flips, attack
//! margins), multi-seed statistics, and one experiment module per table
//! and figure:
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`experiments::table1`] | Table I — simulated system specification |
//! | [`experiments::table2`] | Table II — FSM clock cycles |
//! | [`experiments::fig4`] | Fig. 4 — table size vs. activation overhead |
//! | [`experiments::table3`] | Table III — LUTs, vulnerability, overhead μ±σ, FPR |
//! | [`experiments::reliability`] | §IV — no attack succeeds under any of the 9 techniques |
//! | [`experiments::refresh_policies`] | §IV — four refresh-order policies |
//! | [`experiments::flooding`] | §IV — flooding first-trigger points |
//! | [`experiments::vulnerability`] | Table III "Vulnerable" column evidence |
//! | [`experiments::ablation`] | design-choice sweeps (history size, `P_base`, lock threshold) |
//!
//! Each experiment has a matching binary (`cargo run --release --bin
//! fig4_tradeoff` etc.) and a Criterion bench in the `rh-bench` crate.
//!
//! ## Example
//!
//! ```
//! use rh_harness::{engine, scenario, techniques, RunConfig};
//! use rh_harness::ExperimentScale;
//! use rh_hwmodel::Technique;
//!
//! // A tiny run: PARA against the mixed workload, 2 windows, 1 bank.
//! let scale = ExperimentScale::quick();
//! let config = RunConfig::paper(&scale);
//! let trace = scenario::paper_mix(&config, 1);
//! let mut mitigation = techniques::build(Technique::Para, &config, 1);
//! let metrics = engine::run(trace, mitigation.as_mut(), &config);
//! assert!(metrics.workload_activations > 0);
//! ```

pub mod config;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod parallel;
pub mod plot;
pub mod report;
pub mod scenario;
pub mod table;
pub mod techniques;

pub use config::{ExperimentScale, Parallelism, RunConfig};
pub use engine::{run, run_with};
pub use metrics::{MeanStd, RunMetrics};
pub use table::TextTable;
