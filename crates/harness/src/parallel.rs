//! Thread-pool helper for multi-seed sweeps and bank-sharded runs.
//!
//! The simulator itself is single-threaded per run; the harness
//! parallelises across independent jobs — (technique, seed) sweeps and
//! per-bank shards — with plain `std::thread` scoped threads, so no
//! extra dependencies are needed.
//!
//! Work is handed out by a lock-free [`Dispatcher`]: workers claim
//! contiguous chunks of the input with a single `fetch_add` on an atomic
//! cursor, so the hot path takes no lock and jobs are claimed in FIFO
//! (input) order.  Each output is written into its input's slot, so the
//! result order always matches the input order regardless of scheduling.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads [`map`] uses: the `RH_WORKERS`
/// environment variable if set and nonzero, otherwise
/// `std::thread::available_parallelism`.
pub fn available_workers() -> usize {
    if let Ok(value) = std::env::var("RH_WORKERS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Hands out `0..len` in contiguous chunks, in ascending (FIFO) order.
///
/// Claiming is a single `fetch_add`, so concurrent workers never block
/// each other and every index is claimed exactly once.
#[derive(Debug)]
pub struct Dispatcher {
    cursor: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl Dispatcher {
    /// A dispatcher over `len` jobs for `workers` threads.
    ///
    /// The chunk size balances claim overhead against load balance:
    /// several chunks per worker, but at least one job per claim.
    pub fn new(len: usize, workers: usize) -> Self {
        Dispatcher {
            cursor: AtomicUsize::new(0),
            len,
            chunk: (len / workers.max(1) / 4).max(1),
        }
    }

    /// Claims the next chunk of job indices, or `None` when exhausted.
    ///
    /// Memory-ordering audit: `Relaxed` is sufficient, not an
    /// optimisation gamble.  Claim uniqueness needs only the
    /// *atomicity* of the read-modify-write — all RMWs on one atomic
    /// observe a single total modification order, so no two workers
    /// can ever receive overlapping ranges, at any ordering.  The
    /// cursor orders no other memory: job inputs are populated before
    /// `thread::scope` spawns the workers (spawn synchronizes-with
    /// thread start) and result slots are read only after the scope
    /// joins them (termination synchronizes-with join), so those are
    /// the happens-before edges the data rides on, and the model
    /// checker in `tests/model_check.rs` exhaustively verifies the
    /// claim/merge algebra under every interleaving.
    pub fn claim(&self) -> Option<Range<usize>> {
        // lint: allow(D4) — atomic RMW total order alone guarantees
        // disjoint claims; scope spawn/join provide the data edges.
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// A result slot array writable from multiple workers.
///
/// SAFETY argument: the dispatcher hands every index to exactly one
/// worker (a `fetch_add` cursor never returns overlapping ranges), so at
/// most one thread ever touches a given slot, and the scope joins all
/// workers before the slots are read.
struct Slots<T>(Vec<UnsafeCell<MaybeUninit<T>>>);

// lint: allow(D4) — dispatcher hands each index to exactly one worker,
// so slot access is exclusive; see the struct-level SAFETY argument.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(len: usize) -> Self {
        Slots((0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect())
    }

    /// Writes `value` into slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be claimed from the dispatcher by the calling worker
    /// (exclusive access), and written at most once.
    // lint: allow(D4) — caller holds the dispatcher claim for `index`,
    // so the cell is never aliased; covers the fn and its one deref.
    unsafe fn write(&self, index: usize, value: T) {
        unsafe { (*self.0[index].get()).write(value) };
    }

    /// Consumes the slots.
    ///
    /// # Safety
    ///
    /// Every slot must have been written exactly once, and all writers
    /// joined.
    // lint: allow(D4) — caller guarantees all writers joined, so every
    // slot is initialised and owned here.
    unsafe fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            // lint: allow(D4) — per the fn contract each cell was
            // written exactly once, so assume_init is sound.
            .map(|cell| unsafe { cell.into_inner().assume_init() })
            .collect()
    }
}

/// Maps `f` over `inputs` on up to `workers` threads, preserving input
/// order in the output.  Jobs are dispatched in FIFO (input) order.
///
/// `workers == 0` means [`available_workers`].  With one worker (or one
/// input) the map runs inline on the calling thread.
pub fn map_workers<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = if workers == 0 {
        available_workers()
    } else {
        workers
    }
    .min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let dispatcher = Dispatcher::new(inputs.len(), workers);
    let slots = Slots::new(inputs.len());
    // Jobs are moved into per-index option cells so workers can take
    // them by claimed index without a queue lock.
    let jobs: Vec<UnsafeCell<Option<I>>> = inputs.into_iter().map(|i| UnsafeCell::new(Some(i))).collect();
    struct Jobs<I>(Vec<UnsafeCell<Option<I>>>);
    // SAFETY: same exclusivity argument as `Slots` — each index is
    // claimed by exactly one worker.
    // lint: allow(D4) — exclusive per-index access via dispatcher claims.
    unsafe impl<I: Send> Sync for Jobs<I> {}
    impl<I> Jobs<I> {
        /// # Safety
        ///
        /// `index` must be exclusively claimed by the calling worker.
        // lint: allow(D4) — caller holds the claim for `index`; covers
        // the fn and its one deref.
        unsafe fn take(&self, index: usize) -> Option<I> {
            unsafe { (*self.0[index].get()).take() }
        }
    }
    let jobs = Jobs(jobs);

    std::thread::scope(|scope| {
        let jobs = &jobs;
        let slots = &slots;
        let dispatcher = &dispatcher;
        let f = &f;
        for _ in 0..workers {
            scope.spawn(move || {
                while let Some(range) = dispatcher.claim() {
                    for index in range {
                        // SAFETY: `index` came from `dispatcher.claim()`
                        // on this thread, so no other thread reads or
                        // writes these cells.
                        // lint: allow(D4) — index exclusively claimed
                        // above; take and write touch only its cells.
                        let input = unsafe { jobs.take(index) }.expect("job dispatched twice");
                        let output = f(input);
                        // lint: allow(D4) — same claim covers the write.
                        unsafe { slots.write(index, output) };
                    }
                }
            });
        }
    });
    // SAFETY: the scope joined every worker, and the dispatcher handed
    // out each index exactly once, so every slot is initialised.
    // lint: allow(D4) — join happened above; every slot written once.
    unsafe { slots.into_vec() }
}

/// Maps `f` over `inputs` using up to [`available_workers`] threads,
/// preserving input order in the output.
///
/// ```
/// use rh_harness::parallel::map;
/// let squares = map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    map_workers(inputs, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn preserves_order() {
        let out = map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn dispatcher_claims_fifo_ascending() {
        let d = Dispatcher::new(10, 3);
        let mut claimed = Vec::new();
        while let Some(range) = d.claim() {
            claimed.push(range);
        }
        // Ranges are contiguous, ascending and cover 0..10 exactly.
        let mut next = 0;
        for range in &claimed {
            assert_eq!(range.start, next);
            next = range.end;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn dispatcher_covers_all_indices_across_threads() {
        let d = Dispatcher::new(1000, 4);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(range) = d.claim() {
                        seen.lock().unwrap().extend(range);
                    }
                });
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn map_workers_matches_sequential_at_any_worker_count() {
        let expected: Vec<i64> = (0..57).map(|x| x * x - 3).collect();
        for workers in [1, 2, 3, 8] {
            let out = map_workers((0..57).collect(), workers, |x: i64| x * x - 3);
            assert_eq!(out, expected, "workers {workers}");
        }
    }

    #[test]
    fn worker_env_override_is_respected() {
        // available_workers parses RH_WORKERS when set; this only
        // exercises the parse path without mutating the environment.
        assert!(available_workers() >= 1);
    }
}
