//! Thread-pool helper for multi-seed sweeps.
//!
//! The simulator itself is single-threaded per run; the harness
//! parallelises across independent (technique, seed) runs with plain
//! `std::thread` scoped threads, so no extra dependencies are needed.

/// Maps `f` over `inputs` using up to `std::thread::available_parallelism`
/// worker threads, preserving input order in the output.
///
/// ```
/// use rh_harness::parallel::map;
/// let squares = map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let jobs: Vec<(usize, I)> = inputs.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(jobs);
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                match job {
                    Some((index, input)) => {
                        let output = f(input);
                        results
                            .lock()
                            .expect("results poisoned")
                            .push((index, output));
                    }
                    None => break,
                }
            });
        }
    });
    let mut collected = results.into_inner().expect("results poisoned");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(map(vec![7], |x: i32| x + 1), vec![8]);
    }
}
