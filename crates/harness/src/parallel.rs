//! Thread-pool helper for multi-seed sweeps and bank-sharded runs.
//!
//! The simulator itself is single-threaded per run; the harness
//! parallelises across independent jobs — (technique, seed) sweeps and
//! per-bank shards — with plain `std::thread` scoped threads, so no
//! extra dependencies are needed.
//!
//! Work is handed out by a lock-free [`Dispatcher`]: workers claim
//! contiguous chunks of the input with a single `fetch_add` on an atomic
//! cursor, so the hot path takes no lock and jobs are claimed in FIFO
//! (input) order.  Each output is written into its input's slot, so the
//! result order always matches the input order regardless of scheduling.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads [`map`] uses: the `RH_WORKERS`
/// environment variable if set and nonzero, otherwise
/// `std::thread::available_parallelism`.
pub fn available_workers() -> usize {
    if let Ok(value) = std::env::var("RH_WORKERS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Hands out `0..len` in contiguous chunks, in ascending (FIFO) order.
///
/// Claiming is a single `fetch_add`, so concurrent workers never block
/// each other and every index is claimed exactly once.
#[derive(Debug)]
pub struct Dispatcher {
    cursor: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl Dispatcher {
    /// A dispatcher over `len` jobs for `workers` threads.
    ///
    /// The chunk size balances claim overhead against load balance:
    /// several chunks per worker, but at least one job per claim.
    pub fn new(len: usize, workers: usize) -> Self {
        Dispatcher {
            cursor: AtomicUsize::new(0),
            len,
            chunk: (len / workers.max(1) / 4).max(1),
        }
    }

    /// Claims the next chunk of job indices, or `None` when exhausted.
    ///
    /// Memory-ordering audit: `Relaxed` is sufficient, not an
    /// optimisation gamble.  Claim uniqueness needs only the
    /// *atomicity* of the read-modify-write — all RMWs on one atomic
    /// observe a single total modification order, so no two workers
    /// can ever receive overlapping ranges, at any ordering.  The
    /// cursor orders no other memory: job inputs are populated before
    /// `thread::scope` spawns the workers (spawn synchronizes-with
    /// thread start) and result slots are read only after the scope
    /// joins them (termination synchronizes-with join), so those are
    /// the happens-before edges the data rides on, and the model
    /// checker in `tests/model_check.rs` exhaustively verifies the
    /// claim/merge algebra under every interleaving.
    pub fn claim(&self) -> Option<Range<usize>> {
        // lint: allow(D4) — atomic RMW total order alone guarantees
        // disjoint claims; scope spawn/join provide the data edges.
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// A result slot array writable from multiple workers.
///
/// SAFETY argument: the dispatcher hands every index to exactly one
/// worker (a `fetch_add` cursor never returns overlapping ranges), so at
/// most one thread ever touches a given slot, and the scope joins all
/// workers before the slots are read.
struct Slots<T>(Vec<UnsafeCell<MaybeUninit<T>>>);

// lint: allow(D4) — dispatcher hands each index to exactly one worker,
// so slot access is exclusive; see the struct-level SAFETY argument.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(len: usize) -> Self {
        Slots(
            (0..len)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        )
    }

    /// Writes `value` into slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be claimed from the dispatcher by the calling worker
    /// (exclusive access), and written at most once.
    // lint: allow(D4) — caller holds the dispatcher claim for `index`,
    // so the cell is never aliased; covers the fn and its one deref.
    unsafe fn write(&self, index: usize, value: T) {
        unsafe { (*self.0[index].get()).write(value) };
    }

    /// Consumes the slots.
    ///
    /// # Safety
    ///
    /// Every slot must have been written exactly once, and all writers
    /// joined.
    // lint: allow(D4) — caller guarantees all writers joined, so every
    // slot is initialised and owned here.
    unsafe fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            // lint: allow(D4) — per the fn contract each cell was
            // written exactly once, so assume_init is sound.
            .map(|cell| unsafe { cell.into_inner().assume_init() })
            .collect()
    }
}

/// Worker-local cursor state for [`TwoLevelDispatcher`]: the device the
/// worker currently owns, if any.
///
/// Keeping the affinity worker-local (instead of inside the dispatcher)
/// means claiming from the owned device is a single inner `fetch_add`
/// with no shared scheduler state beyond the cursors themselves.
#[derive(Debug, Default)]
pub struct WorkerCursor {
    device: Option<usize>,
}

impl WorkerCursor {
    /// A fresh cursor owning no device.
    pub fn new() -> Self {
        WorkerCursor::default()
    }

    /// The device this worker currently claims jobs from, if any.
    pub fn device(&self) -> Option<usize> {
        self.device
    }
}

/// The two-level work-stealing scheduler behind fleet campaigns: an
/// outer FIFO cursor hands whole *devices* to workers, and each device
/// has an inner cursor handing out its *jobs* (bank shards, or the one
/// whole-device job of an unshardable trace).
///
/// Claim protocol, per [`TwoLevelDispatcher::claim`] call:
///
/// 1. **Own device first** — if the worker owns a device, claim its
///    next job with one inner `fetch_add` (device affinity keeps a
///    device's bank shards on one worker while the fleet is wide).
/// 2. **Fresh device next** — otherwise claim the next unclaimed
///    device from the outer cursor (`fetch_add`, FIFO in device
///    order), so at most one worker ever *owns* a given device.
/// 3. **Steal last** — when the outer cursor is exhausted, scan the
///    devices in ascending order and steal leftover jobs directly
///    from their inner cursors, so the tail of a campaign (a few big
///    devices still in flight) is finished by every idle worker
///    instead of serialising on the owners.
///
/// Every job index is handed out by exactly one inner `fetch_add`, so
/// — exactly as for [`Dispatcher`] — claim uniqueness needs only RMW
/// atomicity, at any memory ordering, whether the claimer is the
/// device's owner or a thief.  The two-level model check in
/// `tests/model_check.rs` verifies the protocol (device-claim
/// uniqueness, job exclusivity, merge independence) under every
/// interleaving of 2–3 workers, including the steal phase.
#[derive(Debug)]
pub struct TwoLevelDispatcher {
    /// Outer cursor: next unowned device.
    device_cursor: AtomicUsize,
    /// Inner cursor per device: next unclaimed job of that device.
    job_cursors: Vec<AtomicUsize>,
    /// Job count per device.
    job_counts: Vec<usize>,
}

impl TwoLevelDispatcher {
    /// A dispatcher over `job_counts.len()` devices, device `d` having
    /// `job_counts[d]` jobs.
    pub fn new(job_counts: Vec<usize>) -> Self {
        TwoLevelDispatcher {
            device_cursor: AtomicUsize::new(0),
            job_cursors: job_counts.iter().map(|_| AtomicUsize::new(0)).collect(),
            job_counts,
        }
    }

    /// Total jobs across all devices.
    pub fn total_jobs(&self) -> usize {
        self.job_counts.iter().sum()
    }

    /// Claims one job of `device`, or `None` when its jobs are gone.
    ///
    /// Memory-ordering audit: as in [`Dispatcher::claim`], uniqueness
    /// rides on the RMW total modification order alone; job inputs are
    /// published before `thread::scope` spawns the workers and results
    /// are read after it joins them, so those edges carry the data.
    fn claim_job(&self, device: usize) -> Option<(usize, usize)> {
        // lint: allow(D4) — atomic RMW total order alone guarantees
        // each (device, job) index is handed out exactly once.
        let job = self.job_cursors[device].fetch_add(1, Ordering::Relaxed);
        (job < self.job_counts[device]).then_some((device, job))
    }

    /// Claims the next `(device, job)` pair for a worker, or `None`
    /// when the whole fleet is drained.
    pub fn claim(&self, cursor: &mut WorkerCursor) -> Option<(usize, usize)> {
        loop {
            // Level 1a: the worker's own device.
            if let Some(device) = cursor.device {
                if let Some(claim) = self.claim_job(device) {
                    return Some(claim);
                }
                cursor.device = None;
            }
            // Level 1b: own a fresh device (FIFO in device order).
            // lint: allow(D4) — same RMW-atomicity argument as above:
            // each device index is owned by at most one worker.
            let device = self.device_cursor.fetch_add(1, Ordering::Relaxed);
            if device < self.job_counts.len() {
                cursor.device = Some(device);
                continue;
            }
            // Level 2: steal leftover jobs from in-flight devices, in
            // ascending device order.  The inner fetch_add makes the
            // steal race-free against the owner: whichever side claims
            // a job index first owns it exclusively.
            for device in 0..self.job_counts.len() {
                if let Some(claim) = self.claim_job(device) {
                    return Some(claim);
                }
            }
            return None;
        }
    }
}

/// Maps `f` over `inputs` on up to `workers` threads, preserving input
/// order in the output.  Jobs are dispatched in FIFO (input) order.
///
/// `workers == 0` means [`available_workers`].  With one worker (or one
/// input) the map runs inline on the calling thread.
pub fn map_workers<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = if workers == 0 {
        available_workers()
    } else {
        workers
    }
    .min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let dispatcher = Dispatcher::new(inputs.len(), workers);
    let slots = Slots::new(inputs.len());
    // Jobs are moved into per-index option cells so workers can take
    // them by claimed index without a queue lock.
    let jobs: Vec<UnsafeCell<Option<I>>> = inputs
        .into_iter()
        .map(|i| UnsafeCell::new(Some(i)))
        .collect();
    struct Jobs<I>(Vec<UnsafeCell<Option<I>>>);
    // SAFETY: same exclusivity argument as `Slots` — each index is
    // claimed by exactly one worker.
    // lint: allow(D4) — exclusive per-index access via dispatcher claims.
    unsafe impl<I: Send> Sync for Jobs<I> {}
    impl<I> Jobs<I> {
        /// # Safety
        ///
        /// `index` must be exclusively claimed by the calling worker.
        // lint: allow(D4) — caller holds the claim for `index`; covers
        // the fn and its one deref.
        unsafe fn take(&self, index: usize) -> Option<I> {
            unsafe { (*self.0[index].get()).take() }
        }
    }
    let jobs = Jobs(jobs);

    std::thread::scope(|scope| {
        let jobs = &jobs;
        let slots = &slots;
        let dispatcher = &dispatcher;
        let f = &f;
        for _ in 0..workers {
            scope.spawn(move || {
                while let Some(range) = dispatcher.claim() {
                    for index in range {
                        // SAFETY: `index` came from `dispatcher.claim()`
                        // on this thread, so no other thread reads or
                        // writes these cells.
                        // lint: allow(D4) — index exclusively claimed
                        // above; take and write touch only its cells.
                        let input = unsafe { jobs.take(index) }.expect("job dispatched twice");
                        let output = f(input);
                        // lint: allow(D4) — same claim covers the write.
                        unsafe { slots.write(index, output) };
                    }
                }
            });
        }
    });
    // SAFETY: the scope joined every worker, and the dispatcher handed
    // out each index exactly once, so every slot is initialised.
    // lint: allow(D4) — join happened above; every slot written once.
    unsafe { slots.into_vec() }
}

/// Maps `f` over `inputs` using up to [`available_workers`] threads,
/// preserving input order in the output.
///
/// ```
/// use rh_harness::parallel::map;
/// let squares = map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    map_workers(inputs, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn preserves_order() {
        let out = map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn dispatcher_claims_fifo_ascending() {
        let d = Dispatcher::new(10, 3);
        let mut claimed = Vec::new();
        while let Some(range) = d.claim() {
            claimed.push(range);
        }
        // Ranges are contiguous, ascending and cover 0..10 exactly.
        let mut next = 0;
        for range in &claimed {
            assert_eq!(range.start, next);
            next = range.end;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn dispatcher_covers_all_indices_across_threads() {
        let d = Dispatcher::new(1000, 4);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(range) = d.claim() {
                        seen.lock().unwrap().extend(range);
                    }
                });
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn map_workers_matches_sequential_at_any_worker_count() {
        let expected: Vec<i64> = (0..57).map(|x| x * x - 3).collect();
        for workers in [1, 2, 3, 8] {
            let out = map_workers((0..57).collect(), workers, |x: i64| x * x - 3);
            assert_eq!(out, expected, "workers {workers}");
        }
    }

    #[test]
    fn two_level_single_worker_drains_in_device_order() {
        let d = TwoLevelDispatcher::new(vec![2, 3, 1]);
        assert_eq!(d.total_jobs(), 6);
        let mut cursor = WorkerCursor::new();
        let mut claimed = Vec::new();
        while let Some(claim) = d.claim(&mut cursor) {
            claimed.push(claim);
        }
        // One worker owns each device in turn and drains it fully.
        assert_eq!(
            claimed,
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 0)]
        );
        assert_eq!(d.claim(&mut cursor), None);
    }

    #[test]
    fn two_level_covers_every_job_exactly_once_across_threads() {
        let counts = vec![3usize, 1, 4, 2, 5];
        let d = TwoLevelDispatcher::new(counts.clone());
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut cursor = WorkerCursor::new();
                    while let Some(claim) = d.claim(&mut cursor) {
                        seen.lock().expect("collector lock").push(claim);
                    }
                });
            }
        });
        let mut seen = seen.into_inner().expect("collector lock");
        seen.sort_unstable();
        let expected: Vec<(usize, usize)> = counts
            .iter()
            .enumerate()
            .flat_map(|(device, &jobs)| (0..jobs).map(move |job| (device, job)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn two_level_steals_from_in_flight_devices() {
        // Worker A owns device 0 but stalls after one job; worker B
        // exhausts the outer cursor and must steal device 0's leftovers.
        let d = TwoLevelDispatcher::new(vec![3, 1]);
        let mut a = WorkerCursor::new();
        let mut b = WorkerCursor::new();
        assert_eq!(d.claim(&mut a), Some((0, 0)));
        assert_eq!(a.device(), Some(0));
        assert_eq!(d.claim(&mut b), Some((1, 0)));
        // B's own device is drained; the outer cursor is exhausted, so
        // the next claims are steals from device 0.
        assert_eq!(d.claim(&mut b), Some((0, 1)));
        assert_eq!(d.claim(&mut b), Some((0, 2)));
        assert_eq!(d.claim(&mut b), None);
        // The stalled owner finds its device empty and exits cleanly.
        assert_eq!(d.claim(&mut a), None);
    }

    #[test]
    fn two_level_handles_empty_devices_and_empty_fleet() {
        let d = TwoLevelDispatcher::new(vec![0, 2, 0]);
        let mut cursor = WorkerCursor::new();
        assert_eq!(d.claim(&mut cursor), Some((1, 0)));
        assert_eq!(d.claim(&mut cursor), Some((1, 1)));
        assert_eq!(d.claim(&mut cursor), None);
        let empty = TwoLevelDispatcher::new(Vec::new());
        assert_eq!(empty.total_jobs(), 0);
        assert_eq!(empty.claim(&mut WorkerCursor::new()), None);
    }

    #[test]
    fn worker_env_override_is_respected() {
        // available_workers parses RH_WORKERS when set; this only
        // exercises the parse path without mutating the environment.
        assert!(available_workers() >= 1);
    }
}
