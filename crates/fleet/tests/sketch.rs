//! Property tests for the fleet's mergeable quantile sketch: the
//! algebraic laws the streaming aggregation relies on (merge
//! associativity/commutativity, partition independence) and the rank
//! guarantee against exactly-computed quantiles.

use proptest::prelude::*;
use rh_fleet::QuantileSketch;

/// Samples in the ranges the fleet actually sketches: zeros (no-flip
/// rates), small counts, and activation-scale values.
fn sample() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        (1u32..100).prop_map(f64::from),
        1.0f64..1e7,
        1e-3f64..1.0,
    ]
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut sketch = QuantileSketch::new();
    for &v in values {
        sketch.insert(v);
    }
    sketch
}

/// Exact target rank the sketch promises to bracket: `max(1, ⌈q·n⌉)`.
fn exact_rank(q: f64, n: usize) -> usize {
    let r = (q * n as f64).ceil() as usize;
    r.clamp(1, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging is commutative: A∪B == B∪A, down to serialized bytes.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(sample(), 0..40),
        b in proptest::collection::vec(sample(), 0..40),
    ) {
        let mut ab = sketch_of(&a);
        ab.merge(&sketch_of(&b));
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a));
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(
            serde_json::to_string(&ab).expect("serializes"),
            serde_json::to_string(&ba).expect("serializes")
        );
    }

    /// Merging is associative: (A∪B)∪C == A∪(B∪C).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(sample(), 0..30),
        b in proptest::collection::vec(sample(), 0..30),
        c in proptest::collection::vec(sample(), 0..30),
    ) {
        let mut left = sketch_of(&a);
        left.merge(&sketch_of(&b));
        left.merge(&sketch_of(&c));
        let mut bc = sketch_of(&b);
        bc.merge(&sketch_of(&c));
        let mut right = sketch_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Any partition of a sample multiset merges to the sketch of the
    /// whole — the property that makes per-shard sketching sound.
    #[test]
    fn partitions_merge_to_the_whole(
        values in proptest::collection::vec(sample(), 1..80),
        cut_seed in 0usize..80,
    ) {
        let cut = cut_seed % values.len();
        let mut merged = sketch_of(&values[..cut]);
        merged.merge(&sketch_of(&values[cut..]));
        prop_assert_eq!(merged, sketch_of(&values));
    }

    /// The rank guarantee, checked against exact order statistics: for
    /// every quantile, the bracket `(lo, hi]` contains the true
    /// rank-`r` sample, strictly more than `lo` and at most `hi`.
    #[test]
    fn brackets_contain_exact_quantiles(
        values in proptest::collection::vec(sample(), 1..100),
        q in 0.0f64..=1.0,
    ) {
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).expect("no NaN samples"));
        let sketch = sketch_of(&values);
        for q in [q, 0.0, 0.5, 0.9, 0.99, 1.0] {
            let r = exact_rank(q, sorted.len());
            let exact = sorted[r - 1];
            let (lo, hi) = sketch.quantile_bracket(q).expect("non-empty");
            prop_assert!(
                exact > lo && exact <= hi,
                "q={q} rank={r} exact={exact} bracket=({lo}, {hi}]"
            );
        }
    }

    /// The bracket is tight: relative width stays within the
    /// construction accuracy γ for positive samples.
    #[test]
    fn brackets_are_gamma_tight(
        values in proptest::collection::vec(1.0f64..1e7, 1..60),
        q in 0.0f64..=1.0,
    ) {
        let sketch = sketch_of(&values);
        let (lo, hi) = sketch.quantile_bracket(q).expect("non-empty");
        prop_assert!(lo > 0.0, "positive samples have positive brackets");
        prop_assert!(hi / lo <= sketch.gamma() * (1.0 + 1e-12), "width {}", hi / lo);
    }

    /// Empty and singleton edges: empty sketches answer `None`,
    /// singletons bracket their one sample at every quantile, and
    /// merging with an empty sketch is the identity.
    #[test]
    fn empty_and_singleton_edges(x in sample(), q in 0.0f64..=1.0) {
        let empty = QuantileSketch::new();
        prop_assert_eq!(empty.count(), 0);
        prop_assert_eq!(empty.quantile_bracket(q), None);

        let single = sketch_of(&[x]);
        let (lo, hi) = single.quantile_bracket(q).expect("one sample");
        prop_assert!(x > lo && x <= hi, "x={x} bracket=({lo}, {hi}]");

        let mut merged = single.clone();
        merged.merge(&QuantileSketch::new());
        prop_assert_eq!(&merged, &single);
        let mut other = QuantileSketch::new();
        other.merge(&single);
        prop_assert_eq!(&other, &single);
    }
}
