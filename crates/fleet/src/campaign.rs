//! The campaign engine: two-level scheduling with streaming, in-order
//! aggregation.
//!
//! [`Fleet::run`] materializes one [`crate::DeviceSpec`] per global
//! device index, decomposes each device into jobs (one per bank shard
//! for multi-bank SPEC-like devices, one whole-device job otherwise)
//! and drives them over a shared pool of workers through
//! [`rh_harness::parallel::TwoLevelDispatcher`]: a worker finishes its
//! current device's shards before claiming a fresh device, and steals
//! bank shards of in-flight devices only when no fresh device remains.
//!
//! Determinism: workers race, the *fold* does not.  Every job is a pure
//! function of its device spec (seeded via [`crate::device_seed`]), a
//! device's shards merge in bank order exactly as
//! [`rh_harness::engine::run_sharded`] would, and the coordinator absorbs
//! finished devices into per-cohort partials strictly in global device
//! order through a reorder buffer.  The final report is therefore
//! byte-identical at every worker count and schedule — and equal to
//! replaying any single device through [`rh_harness::Runner`] with its
//! derived seed.

use crate::checkpoint::{Checkpoint, CohortPartial};
use crate::cohort::{CampaignSpec, DeviceSpec, WorkloadKind};
use crate::report::FleetReport;
use dram_sim::{BankId, Geometry};
use mem_trace::cpu::{CpuWorkload, CpuWorkloadConfig};
use mem_trace::{ShardError, TraceSource, TraceSplit};
use rh_harness::parallel::{TwoLevelDispatcher, WorkerCursor};
use rh_harness::{engine, scenario, techniques, NullObserver};
use rh_harness::{ExperimentScale, Parallelism, RunConfig, RunMetrics, Runner};
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Why a campaign cannot run (all caught before any device starts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The campaign has no devices.
    EmptyCampaign,
    /// A cohort's distributions are degenerate (empty technique mix,
    /// empty bank or threshold range).
    InvalidCohort {
        /// Offending cohort's name.
        cohort: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A SPEC-like cohort names an attack scenario that does not exist.
    UnknownAttack {
        /// Offending cohort's name.
        cohort: String,
        /// The unknown attack name.
        attack: String,
    },
    /// A cohort pairs an unshardable trace source with a multi-bank
    /// range; the underlying [`ShardError`] says why the source cannot
    /// split.
    Unshardable {
        /// Offending cohort's name.
        cohort: String,
        /// The trace source's own refusal.
        error: ShardError,
    },
    /// A checkpoint from a different campaign (spec fingerprints
    /// disagree) was passed to [`Fleet::resume`].
    CheckpointMismatch {
        /// This campaign's [`CampaignSpec::fingerprint`].
        expected: u64,
        /// The checkpoint's recorded fingerprint.
        found: u64,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyCampaign => write!(f, "campaign has no devices"),
            FleetError::InvalidCohort { cohort, reason } => {
                write!(f, "cohort {cohort:?} is invalid: {reason}")
            }
            FleetError::UnknownAttack { cohort, attack } => {
                write!(f, "cohort {cohort:?} names unknown attack {attack:?}")
            }
            FleetError::Unshardable { cohort, error } => {
                write!(f, "cohort {cohort:?} spans multiple banks but {error}")
            }
            FleetError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different campaign \
                 (spec fingerprint {found:#x}, expected {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Unshardable { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The campaign engine; see the module docs for the execution model.
///
/// ```
/// use rh_fleet::{CampaignSpec, CohortSpec, Fleet};
///
/// let spec = CampaignSpec::new(1).cohort(CohortSpec::new("pop", 3));
/// let report = Fleet::new(spec).workers(2).run().expect("valid");
/// assert_eq!(report.devices, 3);
/// ```
pub struct Fleet {
    spec: CampaignSpec,
    workers: usize,
}

impl Fleet {
    /// A fleet over `spec` with automatic worker count
    /// (`RH_WORKERS` / available parallelism).
    pub fn new(spec: CampaignSpec) -> Self {
        Fleet { spec, workers: 0 }
    }

    /// Sets the worker count (`0` = automatic).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The campaign spec this fleet runs.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Checks the campaign without running anything.
    ///
    /// # Errors
    ///
    /// Every [`FleetError`] except
    /// [`FleetError::CheckpointMismatch`]: empty campaigns, degenerate
    /// cohort distributions, unknown attack names, and unshardable
    /// trace sources paired with multi-bank ranges.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.spec.total_devices() == 0 {
            return Err(FleetError::EmptyCampaign);
        }
        let probe = RunConfig::paper(&ExperimentScale::quick());
        for cohort in &self.spec.cohorts {
            let invalid = |reason: String| FleetError::InvalidCohort {
                cohort: cohort.name.clone(),
                reason,
            };
            if cohort.techniques.is_empty() {
                return Err(invalid("empty technique mix".into()));
            }
            if cohort.banks.0 == 0 || cohort.banks.0 > cohort.banks.1 {
                return Err(invalid(format!("empty bank range {:?}", cohort.banks)));
            }
            if cohort.flip_threshold.0 == 0 || cohort.flip_threshold.0 > cohort.flip_threshold.1 {
                return Err(invalid(format!(
                    "empty flip-threshold range {:?}",
                    cohort.flip_threshold
                )));
            }
            match cohort.workload {
                WorkloadKind::SpecLike => {
                    if scenario::named_attack(&probe, &cohort.attack).is_none() {
                        return Err(FleetError::UnknownAttack {
                            cohort: cohort.name.clone(),
                            attack: cohort.attack.clone(),
                        });
                    }
                }
                WorkloadKind::Cpu => {
                    if cohort.banks.1 > 1 {
                        // Ask the source itself so the fleet error
                        // carries the trace layer's typed refusal.
                        let geometry = Geometry::scaled_down(64).with_banks(cohort.banks.1);
                        let error = CpuWorkload::new(CpuWorkloadConfig::paper(&geometry, 1), 0)
                            .shard_support()
                            .expect_err("CpuWorkload refuses bank sharding");
                        return Err(FleetError::Unshardable {
                            cohort: cohort.name.clone(),
                            error,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the whole campaign.
    ///
    /// # Errors
    ///
    /// See [`Fleet::validate`].
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        self.run_with_sink(|_, _| {})
    }

    /// Runs the whole campaign, calling `sink` once per device — in
    /// global device order, regardless of worker count — with the
    /// device's spec and merged metrics.
    ///
    /// # Errors
    ///
    /// See [`Fleet::validate`].
    pub fn run_with_sink<F>(&self, mut sink: F) -> Result<FleetReport, FleetError>
    where
        F: FnMut(&DeviceSpec, &RunMetrics),
    {
        self.validate()?;
        let mut partials = self.fresh_partials();
        self.execute(0, self.spec.total_devices(), &mut partials, &mut sink);
        Ok(FleetReport::new(&self.spec, &partials))
    }

    /// Runs devices `[0, cut)` and returns the resumable snapshot —
    /// the "kill" half of checkpoint-kill-resume.  `cut` past the fleet
    /// is clamped.
    ///
    /// # Errors
    ///
    /// See [`Fleet::validate`].
    pub fn run_until(&self, cut: u64) -> Result<Checkpoint, FleetError> {
        self.validate()?;
        let frontier = cut.min(self.spec.total_devices());
        let mut partials = self.fresh_partials();
        self.execute(0, frontier, &mut partials, &mut |_, _| {});
        Ok(Checkpoint {
            fingerprint: self.spec.fingerprint(),
            frontier,
            cohorts: partials,
        })
    }

    /// Resumes from a [`Checkpoint`]: runs the remaining devices and
    /// returns the final report, byte-identical to the uninterrupted
    /// [`Fleet::run`].
    ///
    /// # Errors
    ///
    /// [`FleetError::CheckpointMismatch`] when the checkpoint's spec
    /// fingerprint is not this campaign's, plus everything
    /// [`Fleet::validate`] reports.
    pub fn resume(&self, checkpoint: Checkpoint) -> Result<FleetReport, FleetError> {
        self.resume_with_sink(checkpoint, |_, _| {})
    }

    /// [`Fleet::resume`] with a per-device sink over the *remaining*
    /// devices (the checkpointed ones are already folded in).
    ///
    /// # Errors
    ///
    /// See [`Fleet::resume`].
    pub fn resume_with_sink<F>(
        &self,
        checkpoint: Checkpoint,
        mut sink: F,
    ) -> Result<FleetReport, FleetError>
    where
        F: FnMut(&DeviceSpec, &RunMetrics),
    {
        self.validate()?;
        let expected = self.spec.fingerprint();
        if checkpoint.fingerprint != expected {
            return Err(FleetError::CheckpointMismatch {
                expected,
                found: checkpoint.fingerprint,
            });
        }
        let mut partials = checkpoint.cohorts;
        self.execute(
            checkpoint.frontier,
            self.spec.total_devices(),
            &mut partials,
            &mut sink,
        );
        Ok(FleetReport::new(&self.spec, &partials))
    }

    fn fresh_partials(&self) -> Vec<CohortPartial> {
        self.spec
            .cohorts
            .iter()
            .map(|_| CohortPartial::new())
            .collect()
    }

    fn effective_workers(&self) -> usize {
        Parallelism::with_workers(self.workers).effective_workers()
    }

    /// Runs devices `[start, end)` over the worker pool, folding each
    /// finished device into `partials` (and `sink`) in global device
    /// order via a reorder buffer.
    fn execute(
        &self,
        start: u64,
        end: u64,
        partials: &mut [CohortPartial],
        sink: &mut dyn FnMut(&DeviceSpec, &RunMetrics),
    ) {
        if start >= end {
            return;
        }
        let devices: Vec<DeviceSpec> = (start..end)
            .map(|i| {
                self.spec
                    .device(i)
                    .expect("range checked against the fleet")
            })
            .collect();
        let job_counts: Vec<usize> = devices.iter().map(device_jobs).collect();
        let total_jobs: usize = job_counts.iter().sum();
        let dispatcher = TwoLevelDispatcher::new(job_counts.clone());
        let workers = self.effective_workers().max(1);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let dispatcher = &dispatcher;
                let devices = &devices;
                scope.spawn(move || {
                    let mut cursor = WorkerCursor::new();
                    while let Some((d, j)) = dispatcher.claim(&mut cursor) {
                        let metrics = run_device_job(&devices[d], j);
                        tx.send((d, j, metrics))
                            .expect("coordinator outlives workers");
                    }
                });
            }
            drop(tx);
            // The coordinator: collect shard metrics per device, merge
            // a completed device's shards in bank order (mirroring
            // `engine::run_sharded`), then release devices to the fold
            // strictly in device order.
            let mut parts: Vec<Vec<Option<RunMetrics>>> =
                job_counts.iter().map(|&c| vec![None; c]).collect();
            let mut remaining = job_counts.clone();
            let mut reorder: BTreeMap<usize, RunMetrics> = BTreeMap::new();
            let mut next = 0usize;
            for _ in 0..total_jobs {
                let (d, j, metrics) = rx.recv().expect("a worker thread panicked");
                assert!(parts[d][j].is_none(), "job ({d}, {j}) delivered twice");
                parts[d][j] = Some(metrics);
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    let merged = parts[d]
                        .drain(..)
                        .map(|m| m.expect("counted down to zero"))
                        .reduce(RunMetrics::merge)
                        .expect("every device has at least one job");
                    reorder.insert(d, merged);
                    while let Some(done) = reorder.remove(&next) {
                        let device = &devices[next];
                        sink(device, &done);
                        partials[device.cohort].absorb(&done);
                        next += 1;
                    }
                }
            }
            assert_eq!(next, devices.len(), "reorder buffer drained");
        });
    }
}

/// Jobs a device decomposes into: one per bank for shardable multi-bank
/// devices, else one whole-device job.
fn device_jobs(device: &DeviceSpec) -> usize {
    if device.workload == WorkloadKind::SpecLike && device.banks > 1 {
        usize::try_from(device.banks).expect("bank count fits usize")
    } else {
        1
    }
}

/// Runs one job of one device — a pure function of `(device, job)`.
///
/// Multi-bank SPEC-like devices run one bank shard per job, built
/// exactly as [`engine::run_sharded`] builds them, so the in-order merge
/// of a device's jobs equals the [`Runner`] replay of that device.
fn run_device_job(device: &DeviceSpec, job: usize) -> RunMetrics {
    let config = device.run_config();
    match device.workload {
        WorkloadKind::Cpu => {
            let trace = device.cpu_trace(&config);
            Runner::new(config)
                .technique(device.technique)
                .seed(device.seed)
                .run_source(trace)
                .expect("validation pins CPU cohorts to one bank")
        }
        WorkloadKind::SpecLike => {
            let mut mitigation = techniques::build_any(device.technique, &config, device.seed);
            if device.banks > 1 {
                let bank = BankId(u32::try_from(job).expect("job index is a bank index"));
                let shard = device.spec_trace(&config).bank_shard(bank);
                engine::run_observed(shard, &mut mitigation, &config, &mut NullObserver)
            } else {
                engine::run_observed(
                    device.spec_trace(&config),
                    &mut mitigation,
                    &config,
                    &mut NullObserver,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortSpec;
    use rh_hwmodel::Technique;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::new(5)
            .cohort(
                CohortSpec::new("mixed", 6)
                    .banks(1, 3)
                    .techniques(vec![Technique::Para, Technique::LoLiPromi]),
            )
            .cohort(
                CohortSpec::new("cpu", 2)
                    .workload(WorkloadKind::Cpu)
                    .banks(1, 1),
            )
    }

    #[test]
    fn report_is_identical_across_worker_counts() {
        let fleet = Fleet::new(small_spec());
        let one = fleet.workers(1).run().expect("valid");
        let fleet = Fleet::new(small_spec());
        let four = fleet.workers(4).run().expect("valid");
        assert_eq!(one.to_json(), four.to_json());
    }

    #[test]
    fn sink_sees_devices_in_global_order_with_runner_equal_metrics() {
        let mut seen = Vec::new();
        Fleet::new(small_spec())
            .workers(3)
            .run_with_sink(|device, metrics| seen.push((device.clone(), metrics.clone())))
            .expect("valid");
        let indices: Vec<u64> = seen.iter().map(|(d, _)| d.index).collect();
        assert_eq!(indices, (0..8).collect::<Vec<u64>>());
        // Spot-check one multi-bank device against the Runner replay.
        let (device, fleet_metrics) = seen
            .iter()
            .find(|(d, _)| d.banks > 1)
            .expect("mixed cohort samples a multi-bank device");
        let config = device.run_config();
        let replay = Runner::new(config.clone())
            .technique(device.technique)
            .seed(device.seed)
            .run(device.spec_trace(&config));
        assert_eq!(&replay, fleet_metrics);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let whole = Fleet::new(small_spec()).workers(2).run().expect("valid");
        for cut in [0, 3, 8, 99] {
            let checkpoint = Fleet::new(small_spec())
                .workers(2)
                .run_until(cut)
                .expect("valid");
            let resumed = Fleet::new(small_spec())
                .workers(2)
                .resume(checkpoint)
                .expect("same campaign");
            assert_eq!(whole.to_json(), resumed.to_json(), "cut at {cut}");
        }
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let checkpoint = Fleet::new(small_spec()).run_until(2).expect("valid");
        let mut other = small_spec();
        other.seed = 6;
        let err = Fleet::new(other)
            .resume(checkpoint)
            .expect_err("fingerprints differ");
        assert!(matches!(err, FleetError::CheckpointMismatch { .. }));
    }

    #[test]
    fn validation_rejects_degenerate_campaigns() {
        assert_eq!(
            Fleet::new(CampaignSpec::new(1))
                .run()
                .expect_err("no devices"),
            FleetError::EmptyCampaign
        );
        let empty_mix =
            CampaignSpec::new(1).cohort(CohortSpec::new("bad", 1).techniques(Vec::new()));
        assert!(matches!(
            Fleet::new(empty_mix).run().expect_err("empty mix"),
            FleetError::InvalidCohort { .. }
        ));
        let bad_attack = CampaignSpec::new(1).cohort(CohortSpec::new("bad", 1).attack("meltdown"));
        assert!(matches!(
            Fleet::new(bad_attack).run().expect_err("unknown attack"),
            FleetError::UnknownAttack { .. }
        ));
    }

    #[test]
    fn validation_surfaces_unshardable_cpu_cohorts_as_typed_error() {
        let spec = CampaignSpec::new(1).cohort(
            CohortSpec::new("cpu-wide", 4)
                .workload(WorkloadKind::Cpu)
                .banks(1, 4),
        );
        let err = Fleet::new(spec)
            .run()
            .expect_err("CPU cohorts cannot shard");
        match err {
            FleetError::Unshardable { cohort, error } => {
                assert_eq!(cohort, "cpu-wide");
                assert_eq!(error.source, "CpuWorkload");
            }
            other => panic!("expected Unshardable, got {other:?}"),
        }
    }
}
