//! The population model: cohorts of heterogeneous devices.
//!
//! A campaign is a list of cohorts; each cohort samples per-device
//! configurations — bank count, flip threshold (the weak-cell tail of
//! the cell distribution), and mitigation technique — from ranges and a
//! technique mix.  Every device's full configuration is a pure function
//! of `(campaign_seed, global_device_index)` via
//! [`crate::device_seed`], so [`CampaignSpec::device`] materializes any
//! single device without touching the rest of the fleet, and the
//! determinism suite replays fleet devices in isolation through
//! [`rh_harness::Runner`].

use crate::seeding::device_seed;
use dram_sim::{BackendSpec, Geometry, WeakCellSpec};
use mem_trace::cpu::{CpuWorkload, CpuWorkloadConfig};
use mem_trace::MixedTrace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rh_harness::{scenario, ExperimentScale, RunConfig};
use rh_hwmodel::Technique;
use serde::{Deserialize, Serialize};

/// Which trace generator a cohort's devices run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The SPEC-like interval-level mix plus a named attack —
    /// bank-shardable ([`mem_trace::TraceSplit`]).
    SpecLike,
    /// The access-level CPU model ([`mem_trace::CpuWorkload`]) — NOT
    /// bank-shardable (cores share one RNG and cache hierarchy), so
    /// cohorts using it must stay single-bank; see
    /// [`crate::FleetError::Unshardable`].
    Cpu,
}

/// One cohort: a sub-population sharing distributions, not values.
///
/// Ranges are inclusive `(lo, hi)`; each device samples its own value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSpec {
    /// Cohort label (reported per cohort).
    pub name: String,
    /// Devices in this cohort.
    pub devices: u64,
    /// Inclusive bank-count range sampled per device.
    pub banks: (u32, u32),
    /// Inclusive flip-threshold range sampled per device — the
    /// weak-cell distribution (lower = weaker worst cell).
    pub flip_threshold: (u32, u32),
    /// Technique mix sampled uniformly per device.
    pub techniques: Vec<Technique>,
    /// Refresh windows each device simulates.
    pub windows: u64,
    /// Attack scenario name ([`rh_harness::scenario::named_attack`]).
    pub attack: String,
    /// Trace generator.
    pub workload: WorkloadKind,
    /// Disturbance backend fidelity tier every device in the cohort
    /// runs under (absent in pre-tier campaign files ⇒ exact).
    pub backend: BackendSpec,
    /// Per-row weak-cell model override for every device in the cohort
    /// (absent in pre-weak-map campaign files ⇒ `None`, which keeps the
    /// device's sampled uniform `flip_threshold`).  Like `backend`, the
    /// value is copied, never sampled — specs with a per-device `seed`
    /// still materialize per-device maps, because the map itself is
    /// seeded per bank at run time.
    pub weak_cells: Option<WeakCellSpec>,
}

impl CohortSpec {
    /// A cohort of `devices` devices with fleet-quick defaults: 1–2
    /// banks, the red-team weak-cell threshold band, the paper's
    /// headline technique, one window of the ramp attack on the
    /// SPEC-like workload.
    pub fn new(name: impl Into<String>, devices: u64) -> Self {
        CohortSpec {
            name: name.into(),
            devices,
            banks: (1, 2),
            flip_threshold: (
                rh_redteam::QUICK_FLIP_THRESHOLD,
                2 * rh_redteam::QUICK_FLIP_THRESHOLD,
            ),
            techniques: vec![Technique::LoLiPromi],
            windows: 1,
            attack: "ramp".into(),
            workload: WorkloadKind::SpecLike,
            backend: BackendSpec::Exact,
            weak_cells: None,
        }
    }

    /// Sets the inclusive per-device bank-count range.
    #[must_use]
    pub fn banks(mut self, lo: u32, hi: u32) -> Self {
        self.banks = (lo, hi);
        self
    }

    /// Sets the inclusive per-device flip-threshold range.
    #[must_use]
    pub fn flip_threshold(mut self, lo: u32, hi: u32) -> Self {
        self.flip_threshold = (lo, hi);
        self
    }

    /// Sets the technique mix devices sample from.
    #[must_use]
    pub fn techniques(mut self, techniques: Vec<Technique>) -> Self {
        self.techniques = techniques;
        self
    }

    /// Sets the per-device window count.
    #[must_use]
    pub fn windows(mut self, windows: u64) -> Self {
        self.windows = windows;
        self
    }

    /// Sets the attack scenario name.
    #[must_use]
    pub fn attack(mut self, attack: impl Into<String>) -> Self {
        self.attack = attack.into();
        self
    }

    /// Sets the trace generator.
    #[must_use]
    pub fn workload(mut self, workload: WorkloadKind) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the disturbance backend tier ([`BackendSpec`]) the cohort's
    /// devices run under.
    #[must_use]
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the per-row weak-cell model ([`WeakCellSpec`]) the cohort's
    /// devices run under.
    #[must_use]
    pub fn weak_cells(mut self, weak_cells: WeakCellSpec) -> Self {
        self.weak_cells = Some(weak_cells);
        self
    }
}

/// A whole campaign: the seed and the cohorts, in report order.
///
/// Devices are numbered globally: cohort 0's devices first, then
/// cohort 1's, and so on — [`CampaignSpec::device`] maps a global index
/// back to its cohort and sampled configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// The single campaign seed every device seed derives from.
    pub seed: u64,
    /// The cohorts, in device-numbering and report order.
    pub cohorts: Vec<CohortSpec>,
}

impl CampaignSpec {
    /// An empty campaign under `seed`; add cohorts with
    /// [`CampaignSpec::cohort`].
    pub fn new(seed: u64) -> Self {
        CampaignSpec {
            seed,
            cohorts: Vec::new(),
        }
    }

    /// Appends a cohort.
    #[must_use]
    pub fn cohort(mut self, cohort: CohortSpec) -> Self {
        self.cohorts.push(cohort);
        self
    }

    /// Total devices across all cohorts.
    pub fn total_devices(&self) -> u64 {
        self.cohorts.iter().map(|c| c.devices).sum()
    }

    /// FNV-1a over the canonical JSON of the spec: the identity a
    /// [`crate::Checkpoint`] is pinned to, so a checkpoint can never be
    /// resumed against a different campaign.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("spec serializes");
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in json.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Materializes global device `index`, or `None` past the fleet.
    ///
    /// The sampled configuration is a pure function of
    /// `(self.seed, index)` plus the owning cohort's distributions —
    /// independent of every other device — drawn from a dedicated
    /// `StdRng` seeded with the device's [`device_seed`].
    pub fn device(&self, index: u64) -> Option<DeviceSpec> {
        let mut first = 0u64;
        for (cohort_index, cohort) in self.cohorts.iter().enumerate() {
            if index < first + cohort.devices {
                let seed = device_seed(self.seed, index);
                let mut rng = StdRng::seed_from_u64(seed);
                // Fixed draw order — banks, threshold, technique — so
                // the sampling is part of the campaign's stable
                // contract, not an implementation detail.
                let (bank_lo, bank_hi) = cohort.banks;
                let banks = rng.random_range(bank_lo..=bank_hi);
                let (t_lo, t_hi) = cohort.flip_threshold;
                let flip_threshold = rng.random_range(t_lo..=t_hi);
                let technique = cohort.techniques[rng.random_range(0..cohort.techniques.len())];
                return Some(DeviceSpec {
                    index,
                    cohort: cohort_index,
                    seed,
                    banks,
                    flip_threshold,
                    technique,
                    windows: cohort.windows,
                    attack: cohort.attack.clone(),
                    workload: cohort.workload,
                    // Copied, never sampled: the tier and weak-cell
                    // model must not consume RNG draws, so
                    // banks/threshold/technique sampling is identical
                    // across tiers and maps (the draw order above is a
                    // stable campaign contract).
                    backend: cohort.backend,
                    weak_cells: cohort.weak_cells,
                });
            }
            first += cohort.devices;
        }
        None
    }
}

/// One materialized device: everything needed to run (or re-run) it in
/// isolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Global device index.
    pub index: u64,
    /// Owning cohort's index in [`CampaignSpec::cohorts`].
    pub cohort: usize,
    /// The device's run seed ([`device_seed`]).
    pub seed: u64,
    /// Sampled bank count.
    pub banks: u32,
    /// Sampled flip threshold (weak-cell tail).
    pub flip_threshold: u32,
    /// Sampled mitigation technique.
    pub technique: Technique,
    /// Refresh windows to simulate.
    pub windows: u64,
    /// Attack scenario name.
    pub attack: String,
    /// Trace generator.
    pub workload: WorkloadKind,
    /// Disturbance backend fidelity tier (from the cohort).
    pub backend: BackendSpec,
    /// Per-row weak-cell model (from the cohort).
    pub weak_cells: Option<WeakCellSpec>,
}

impl DeviceSpec {
    /// The device's run configuration: the 1/64 fleet geometry with the
    /// sampled bank count and flip threshold.
    ///
    /// The parallelism policy is the default (shard by bank): the fleet
    /// scheduler drives the shards itself, and a replay through
    /// [`rh_harness::Runner`] produces bit-identical results at any
    /// worker count by the engine's determinism contract.
    pub fn run_config(&self) -> RunConfig {
        let mut config = RunConfig::paper(&ExperimentScale {
            windows: self.windows,
            banks: self.banks,
            seeds: 1,
        });
        config.geometry = Geometry::scaled_down(64).with_banks(self.banks);
        config.flip_threshold = self.flip_threshold;
        config.backend = self.backend;
        if let Some(weak_cells) = self.weak_cells {
            config.weak_cells = weak_cells;
        }
        config
    }

    /// The SPEC-like trace of this device ([`WorkloadKind::SpecLike`]).
    ///
    /// # Panics
    ///
    /// Panics when the cohort's attack name is unknown (campaign
    /// validation rejects such specs before any device runs).
    pub fn spec_trace(&self, config: &RunConfig) -> MixedTrace {
        let attack = scenario::named_attack(config, &self.attack)
            .unwrap_or_else(|| panic!("unknown attack {:?} reached a device run", self.attack));
        scenario::mix_with(config, attack, self.seed)
    }

    /// The CPU-model trace of this device ([`WorkloadKind::Cpu`]).
    pub fn cpu_trace(&self, config: &RunConfig) -> CpuWorkload {
        CpuWorkload::new(
            CpuWorkloadConfig::paper(&config.geometry, config.intervals()),
            self.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cohorts() -> CampaignSpec {
        CampaignSpec::new(11)
            .cohort(
                CohortSpec::new("alpha", 3)
                    .banks(1, 4)
                    .flip_threshold(1000, 4000)
                    .techniques(vec![Technique::Para, Technique::TwiCe]),
            )
            .cohort(
                CohortSpec::new("beta", 2)
                    .workload(WorkloadKind::Cpu)
                    .banks(1, 1),
            )
    }

    #[test]
    fn device_indexing_spans_cohorts_in_order() {
        let spec = two_cohorts();
        assert_eq!(spec.total_devices(), 5);
        for i in 0..3 {
            assert_eq!(spec.device(i).expect("in range").cohort, 0);
        }
        for i in 3..5 {
            assert_eq!(spec.device(i).expect("in range").cohort, 1);
        }
        assert_eq!(spec.device(5), None);
    }

    #[test]
    fn materialization_is_pure_and_in_distribution() {
        let spec = two_cohorts();
        for i in 0..5 {
            let a = spec.device(i).expect("in range");
            let b = spec.device(i).expect("in range");
            assert_eq!(a, b, "device {i} not pure");
            assert_eq!(a.seed, device_seed(11, i));
            let cohort = &spec.cohorts[a.cohort];
            assert!(a.banks >= cohort.banks.0 && a.banks <= cohort.banks.1);
            assert!(
                a.flip_threshold >= cohort.flip_threshold.0
                    && a.flip_threshold <= cohort.flip_threshold.1
            );
            assert!(cohort.techniques.contains(&a.technique));
        }
    }

    #[test]
    fn devices_are_heterogeneous_across_a_cohort() {
        let spec = CampaignSpec::new(3).cohort(
            CohortSpec::new("wide", 32)
                .banks(1, 4)
                .flip_threshold(1000, 100_000)
                .techniques(vec![
                    Technique::Para,
                    Technique::TwiCe,
                    Technique::LoLiPromi,
                ]),
        );
        let devices: Vec<DeviceSpec> = (0..32).map(|i| spec.device(i).expect("in range")).collect();
        let distinct_banks: std::collections::HashSet<u32> =
            devices.iter().map(|d| d.banks).collect();
        let distinct_thresholds: std::collections::HashSet<u32> =
            devices.iter().map(|d| d.flip_threshold).collect();
        let distinct_techniques: std::collections::HashSet<String> =
            devices.iter().map(|d| d.technique.to_string()).collect();
        assert!(distinct_banks.len() > 1, "bank sampling degenerate");
        assert!(
            distinct_thresholds.len() > 8,
            "threshold sampling degenerate"
        );
        assert_eq!(distinct_techniques.len(), 3, "technique mix not covered");
    }

    #[test]
    fn fingerprint_tracks_spec_identity() {
        let spec = two_cohorts();
        assert_eq!(spec.fingerprint(), two_cohorts().fingerprint());
        let mut other = two_cohorts();
        other.seed = 12;
        assert_ne!(spec.fingerprint(), other.fingerprint());
        let mut renamed = two_cohorts();
        renamed.cohorts[0].name = "gamma".into();
        assert_ne!(spec.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn backend_tier_is_copied_not_sampled() {
        // The tier must not consume RNG draws: the same campaign with a
        // different tier samples identical banks/threshold/technique.
        let exact = two_cohorts();
        let mut fast = two_cohorts();
        for cohort in &mut fast.cohorts {
            cohort.backend = BackendSpec::Fast;
        }
        for i in 0..5 {
            let a = exact.device(i).expect("in range");
            let b = fast.device(i).expect("in range");
            assert_eq!(a.backend, BackendSpec::Exact);
            assert_eq!(b.backend, BackendSpec::Fast);
            assert_eq!(b.run_config().backend, BackendSpec::Fast);
            assert_eq!(
                (a.banks, a.flip_threshold, a.technique),
                (b.banks, b.flip_threshold, b.technique),
                "device {i}: backend tier perturbed sampling"
            );
        }
    }

    #[test]
    fn weak_cell_spec_is_copied_not_sampled() {
        // Like the backend tier, the weak-cell model must not consume
        // RNG draws: the same campaign with a sampled map draws
        // identical banks/threshold/technique per device.
        let uniform = two_cohorts();
        let mut sampled = two_cohorts();
        let spec = WeakCellSpec::Sampled {
            seed: 5,
            strong: 4096,
            weak_lo: 1024,
            weak_hi: 2048,
            weak_per_mille: 50,
        };
        for cohort in &mut sampled.cohorts {
            cohort.weak_cells = Some(spec);
        }
        for i in 0..5 {
            let a = uniform.device(i).expect("in range");
            let b = sampled.device(i).expect("in range");
            assert_eq!(a.weak_cells, None);
            assert_eq!(b.weak_cells, Some(spec));
            assert_eq!(b.run_config().weak_cells, spec);
            assert_eq!(
                (a.banks, a.flip_threshold, a.technique),
                (b.banks, b.flip_threshold, b.technique),
                "device {i}: weak-cell model perturbed sampling"
            );
        }
    }

    #[test]
    fn pre_weakmap_campaign_json_parses_as_none() {
        // Campaign files written before the weak_cells field existed
        // carry no such key; they must keep meaning the uniform model.
        let spec = two_cohorts();
        let json = serde_json::to_string(&spec).expect("serializes");
        let stripped = json.replace(",\"weak_cells\":null", "");
        assert_ne!(json, stripped, "test must actually strip the field");
        let back: CampaignSpec = serde_json::from_str(&stripped).expect("parses");
        assert_eq!(spec, back);
    }

    #[test]
    fn pre_tier_campaign_json_parses_as_exact() {
        // Campaign files written before the backend field existed carry
        // no "backend" key; they must keep meaning the exact tier.
        let spec = two_cohorts();
        let json = serde_json::to_string(&spec).expect("serializes");
        let stripped = json.replace(",\"backend\":\"exact\"", "");
        assert_ne!(json, stripped, "test must actually strip the field");
        let back: CampaignSpec = serde_json::from_str(&stripped).expect("parses");
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = two_cohorts();
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: CampaignSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(spec, back);
    }
}
