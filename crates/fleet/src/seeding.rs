//! Deterministic per-device seed derivation.
//!
//! One campaign seed fans out to millions of device seeds the same way
//! a run seed fans out to bank seeds ([`dram_sim::bank_seed`]): a
//! splitmix64 chain keyed by the device index.  The derivation is a
//! pure function of `(campaign_seed, device)` — independent of cohort
//! layout, worker count, or how many other devices exist — which is
//! what lets a single device be re-run in isolation
//! ([`crate::CampaignSpec::device`] + [`rh_harness::Runner`]) and
//! reproduce its fleet metrics bit-for-bit.
//!
//! The seed tree of a campaign is therefore two levels deep:
//!
//! ```text
//! campaign_seed
//! ├── device_seed(campaign_seed, 0)        device 0 (run seed)
//! │   ├── bank_seed(device_seed, 0)        bank 0 decision stream
//! │   └── bank_seed(device_seed, 1)        bank 1 decision stream
//! ├── device_seed(campaign_seed, 1)        device 1
//! │   └── …
//! └── …
//! ```

/// Derives device `device`'s run seed from the campaign seed.
///
/// Distinct devices (and distinct campaign seeds) get well-separated
/// streams; the result also differs from `campaign_seed` itself, so a
/// device's stream never aliases the campaign-level stream.
///
/// ```
/// use rh_fleet::device_seed;
/// let s0 = device_seed(42, 0);
/// let s1 = device_seed(42, 1);
/// assert_ne!(s0, s1);
/// assert_ne!(s0, 42);
/// assert_eq!(s0, device_seed(42, 0));
/// ```
pub fn device_seed(campaign_seed: u64, device: u64) -> u64 {
    // Offset the state by (device + 1) golden-ratio increments, then
    // run two splitmix64 rounds to decorrelate neighbouring devices —
    // the same construction as `dram_sim::bank_seed`, with a distinct
    // tweak constant so a device's seed never collides with the bank
    // seeds derived *from* it.
    let mut state = campaign_seed
        ^ 0xF1EE_7000_0000_0000u64
            .wrapping_add(device)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = rand::splitmix64(&mut state);
    rand::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_get_distinct_streams() {
        let seeds: std::collections::HashSet<u64> = (0..1024).map(|d| device_seed(7, d)).collect();
        assert_eq!(seeds.len(), 1024);
    }

    #[test]
    fn campaign_seeds_get_distinct_streams() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|s| device_seed(s, 3)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn derivation_is_pure_and_does_not_alias() {
        assert_eq!(device_seed(123, 5), device_seed(123, 5));
        for seed in 0..32 {
            assert_ne!(device_seed(seed, 0), seed);
        }
    }

    #[test]
    fn device_seeds_differ_from_their_own_bank_seeds() {
        // The per-device run seed feeds `dram_sim::bank_seed`; the two
        // levels of the tree must not collide for small indices.
        for device in 0..16 {
            let run_seed = device_seed(9, device);
            for bank in 0..8 {
                assert_ne!(
                    run_seed,
                    dram_sim::bank_seed(run_seed, dram_sim::BankId(bank))
                );
            }
        }
    }
}
