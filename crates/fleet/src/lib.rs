//! # rh-fleet — fleet-scale row-hammer campaigns
//!
//! The paper evaluates TiVaPRoMi on single-device traces; its
//! probabilistic-defense story only becomes meaningful at population
//! scale — how often does the *weakest* device of a heterogeneous fleet
//! flip first?  This crate runs campaigns of N independent simulated
//! devices, each with its own bank count, flip threshold (weak-cell
//! tail) and mitigation technique sampled from per-cohort
//! distributions, over one shared worker pool:
//!
//! * [`CohortSpec`] / [`CampaignSpec`] — the population model: each
//!   cohort samples device configurations from ranges and a technique
//!   mix; every device's full configuration derives from
//!   [`device_seed`]`(campaign_seed, index)` alone, so any device is
//!   reproducible in isolation with the existing
//!   [`rh_harness::Runner`].
//! * [`Fleet`] — the campaign engine: a two-level work-stealing
//!   scheduler ([`rh_harness::parallel::TwoLevelDispatcher`]) hands
//!   workers whole devices first and individual bank shards second,
//!   while a streaming coordinator folds finished devices into
//!   per-cohort aggregates *in device order*, so the report is
//!   byte-identical at every worker count.
//! * [`QuantileSketch`] — deterministic mergeable log-bucket sketch
//!   for time-to-first-flip and flips-per-mega-activation population
//!   distributions.
//! * [`Checkpoint`] — serde snapshot of the completed-device frontier
//!   plus per-cohort partials; [`Fleet::resume`] continues an
//!   interrupted campaign to a byte-identical final report.
//! * [`frontier`] — red-team security-frontier searches per cohort,
//!   at each cohort's weak-cell threshold.
//!
//! ## Example
//!
//! ```
//! use rh_fleet::{CampaignSpec, CohortSpec, Fleet};
//!
//! let spec = CampaignSpec::new(7).cohort(
//!     CohortSpec::new("demo", 4).windows(1).banks(1, 2),
//! );
//! let report = Fleet::new(spec).workers(2).run().expect("valid campaign");
//! assert_eq!(report.devices, 4);
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod cohort;
pub mod frontier;
pub mod report;
pub mod seeding;
pub mod sketch;

pub use campaign::{Fleet, FleetError};
pub use checkpoint::{Checkpoint, CohortPartial};
pub use cohort::{CampaignSpec, CohortSpec, DeviceSpec, WorkloadKind};
pub use frontier::{cohort_frontiers, CohortFrontier};
pub use report::{CohortReport, FleetReport, SketchSummary};
pub use seeding::device_seed;
pub use sketch::QuantileSketch;
