//! Security-frontier search over cohorts: the red-team's adaptive
//! attack synthesis ([`rh_redteam::search_technique`]) pointed at each
//! cohort's weak-cell tail.
//!
//! A fleet report says how a population fares under its *specified*
//! attacks; the frontier says how cheap the best discovered attack is
//! against each cohort's weakest configuration (its lowest flip
//! threshold, its technique mix).  Deterministic: each cohort's search
//! seed derives from the campaign seed via [`crate::device_seed`] keyed
//! by cohort index, so the whole sweep is a pure function of the spec.

use crate::cohort::CampaignSpec;
use crate::seeding::device_seed;
use rh_redteam::{search_technique, SearchConfig, TechniqueFrontier};
use serde::{Deserialize, Serialize};

/// The frontier of one cohort: one searched result per technique in its
/// mix, at the cohort's weakest flip threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortFrontier {
    /// Cohort label.
    pub name: String,
    /// The flip threshold the search attacked (the cohort's range
    /// minimum — its weakest device).
    pub flip_threshold: u32,
    /// Per-technique search results, in the cohort's mix order.
    pub techniques: Vec<TechniqueFrontier>,
}

/// Runs the quick-scale frontier search over every cohort of `spec`.
///
/// Cohort `i` searches with seed `device_seed(spec.seed, i)` — stable
/// under edits to *other* cohorts' device counts, unlike any scheme
/// keyed by global device indices.
pub fn cohort_frontiers(spec: &CampaignSpec) -> Vec<CohortFrontier> {
    spec.cohorts
        .iter()
        .enumerate()
        .map(|(index, cohort)| {
            let cohort_key = u64::try_from(index).expect("cohort count fits u64");
            let search = SearchConfig::quick(device_seed(spec.seed, cohort_key))
                .with_flip_threshold(cohort.flip_threshold.0);
            let techniques = cohort
                .techniques
                .iter()
                .map(|&technique| search_technique(technique.into(), &search))
                .collect();
            CohortFrontier {
                name: cohort.name.clone(),
                flip_threshold: cohort.flip_threshold.0,
                techniques,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortSpec;
    use rh_hwmodel::Technique;

    #[test]
    fn frontiers_cover_each_cohorts_mix_at_its_weakest_threshold() {
        let spec = CampaignSpec::new(13)
            .cohort(
                CohortSpec::new("weak", 4)
                    .flip_threshold(1500, 3000)
                    .techniques(vec![Technique::Para, Technique::LoLiPromi]),
            )
            .cohort(CohortSpec::new("strong", 4).flip_threshold(4000, 8000));
        let frontiers = cohort_frontiers(&spec);
        assert_eq!(frontiers.len(), 2);
        assert_eq!(frontiers[0].flip_threshold, 1500);
        assert_eq!(frontiers[0].techniques.len(), 2);
        assert_eq!(frontiers[0].techniques[0].technique, "PARA");
        assert_eq!(frontiers[1].techniques.len(), 1);
        // Pure function of the spec.
        let again = cohort_frontiers(&spec);
        assert_eq!(frontiers, again);
    }
}
