//! Fleet campaign CLI.
//!
//! ```text
//! fleet [--quick] [--devices N] [--seed S] [--workers W] [--backend TIER]
//!       [--frontier] [output-dir]
//! ```
//!
//! Runs a heterogeneous multi-cohort campaign, prints the per-cohort
//! population table, and writes the JSON report (with a round-trip
//! self-check) to `<output-dir>/fleet-report.json` (default
//! `target/fleet`).  `--quick` runs the CI campaign: 1024 devices
//! spread over three cohorts at the 1/64 geometry.  `--frontier` also
//! runs the red-team security-frontier search per cohort.  `--backend`
//! selects the disturbance fidelity tier (`exact`, `fast` or `cycle`)
//! for every cohort; per-cohort overrides are available through
//! [`CohortSpec::backend`] when building specs programmatically.

use dram_sim::BackendSpec;
use rh_fleet::{cohort_frontiers, CampaignSpec, CohortSpec, Fleet, FleetReport, WorkloadKind};
use rh_hwmodel::Technique;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleet [--quick] [--devices N] [--seed S] [--workers W] \\
         [--backend exact|fast|cycle] [--frontier] [output-dir]"
    );
    ExitCode::FAILURE
}

/// The standard campaign shape: three cohorts splitting `devices`
/// — a broad mixed-technique cohort, a weak-cell tail cohort, and a
/// single-bank CPU-workload cohort.
fn campaign(seed: u64, devices: u64) -> CampaignSpec {
    let cpu = devices / 8;
    let weak = devices / 4;
    let broad = devices - weak - cpu;
    CampaignSpec::new(seed)
        .cohort(CohortSpec::new("broad", broad).banks(1, 4).techniques(vec![
            Technique::LoLiPromi,
            Technique::Para,
            Technique::TwiCe,
        ]))
        .cohort(
            CohortSpec::new("weak-tail", weak)
                .banks(1, 2)
                .flip_threshold(1024, 2048)
                .attack("flooding"),
        )
        .cohort(
            CohortSpec::new("cpu", cpu)
                .workload(WorkloadKind::Cpu)
                .banks(1, 1),
        )
}

fn print_report(report: &FleetReport) {
    println!(
        "campaign seed {} fingerprint {:#018x}: {} devices, {} cohorts",
        report.seed,
        report.fingerprint,
        report.devices,
        report.cohorts.len()
    );
    for cohort in &report.cohorts {
        let p99 = cohort
            .time_to_first_flip
            .p99
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        println!(
            "  {:<10} {:>6} devices  {:>6} flipped  ttff p99 {:>8} acts  \
             flips/Mact p99 {:>10}",
            cohort.name,
            cohort.devices,
            cohort.flip_devices,
            p99,
            cohort
                .flips_per_mega_act
                .p99
                .map_or("-".to_string(), |v| format!("{v:.2}")),
        );
    }
}

fn main() -> ExitCode {
    let mut seed = 7u64;
    let mut devices = 64u64;
    let mut workers = 0usize;
    let mut backend = BackendSpec::Exact;
    let mut frontier = false;
    let mut out_dir = PathBuf::from("target/fleet");
    let mut args = std::env::args().skip(1);
    let mut positional = 0;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| eprintln!("{name} needs a value"));
        match arg.as_str() {
            "--quick" | "quick" => devices = 1024,
            "--frontier" => frontier = true,
            "--devices" => match value("--devices").map(|v| v.parse()) {
                Ok(Ok(n)) => devices = n,
                _ => return usage(),
            },
            "--seed" => match value("--seed").map(|v| v.parse()) {
                Ok(Ok(s)) => seed = s,
                _ => return usage(),
            },
            "--workers" => match value("--workers").map(|v| v.parse()) {
                Ok(Ok(w)) => workers = w,
                _ => return usage(),
            },
            "--backend" => match value("--backend").map(|v| v.parse()) {
                Ok(Ok(b)) => backend = b,
                Ok(Err(e)) => {
                    eprintln!("{e}");
                    return usage();
                }
                Err(()) => return usage(),
            },
            "--help" | "-h" => return usage(),
            other => {
                positional += 1;
                if positional > 1 {
                    return usage();
                }
                out_dir = PathBuf::from(other);
            }
        }
    }

    let mut spec = campaign(seed, devices);
    for cohort in &mut spec.cohorts {
        cohort.backend = backend;
    }
    println!(
        "fleet campaign: seed {seed}, {} devices over {} cohorts, {backend} tier, {} worker(s)",
        spec.total_devices(),
        spec.cohorts.len(),
        if workers == 0 {
            "auto".to_string()
        } else {
            workers.to_string()
        }
    );
    let report = match Fleet::new(spec.clone()).workers(workers).run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign invalid: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_report(&report);

    let json = report.to_json();
    match FleetReport::from_json(&json) {
        Ok(back) if back == report => {}
        Ok(_) => {
            eprintln!("self-check failed: JSON round-trip changed the report");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("self-check failed: {e:?}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join("fleet-report.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} bytes, round-trip checked)",
        path.display(),
        json.len()
    );

    if frontier {
        println!("per-cohort security frontiers (quick search):");
        for cohort in cohort_frontiers(&spec) {
            for technique in &cohort.techniques {
                let budget = technique
                    .frontier
                    .as_ref()
                    .map_or("unbroken".to_string(), |e| format!("budget {}", e.budget));
                println!(
                    "  {:<10} @ threshold {:>6}  {:<10} {}",
                    cohort.name, cohort.flip_threshold, technique.technique, budget
                );
            }
        }
    }
    ExitCode::SUCCESS
}
