//! Checkpoint/resume: the serde snapshot a million-device campaign
//! survives interruption with.
//!
//! The fleet coordinator folds finished devices into per-cohort
//! partials strictly in global device order, so the whole mutable state
//! of a campaign at any cut point is: the *frontier* (devices
//! `[0, frontier)` are folded in) plus the per-cohort partials.  A
//! [`Checkpoint`] is exactly that, pinned to the campaign spec's
//! [`crate::CampaignSpec::fingerprint`] so it can never be resumed
//! against a different campaign.  Resuming re-runs only devices
//! `[frontier, n)` and continues the same in-order fold — byte-identical
//! to the uninterrupted run by construction.
//!
//! ```text
//! Checkpoint JSON layout:
//! {
//!   "fingerprint": <u64>,      // FNV-1a of the campaign spec JSON
//!   "frontier":    <u64>,      // devices [0, frontier) folded in
//!   "cohorts": [               // one partial per cohort, spec order
//!     { "devices_done": …, "metrics": …, "flip_devices": …,
//!       "no_flip_devices": …, "ttff": <sketch>,
//!       "flips_per_mega_act": <sketch> }, …
//!   ]
//! }
//! ```

use crate::sketch::QuantileSketch;
use rh_harness::RunMetrics;
use serde::{Deserialize, Serialize};

/// Streaming aggregation state of one cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortPartial {
    /// Devices of this cohort folded in so far.
    pub devices_done: u64,
    /// Population merge of the finished devices' metrics
    /// ([`RunMetrics::merge_population`]); `None` before the first.
    pub metrics: Option<RunMetrics>,
    /// Devices with at least one bit flip.
    pub flip_devices: u64,
    /// Devices that finished without any flip (excluded from the
    /// time-to-first-flip sketch, counted here instead).
    pub no_flip_devices: u64,
    /// Time-to-first-flip distribution (bank-local activations), over
    /// flipping devices only.
    pub ttff: QuantileSketch,
    /// Flips-per-mega-activation distribution, over all devices.
    pub flips_per_mega_act: QuantileSketch,
}

impl CohortPartial {
    /// An empty partial.
    pub fn new() -> Self {
        CohortPartial {
            devices_done: 0,
            metrics: None,
            flip_devices: 0,
            no_flip_devices: 0,
            ttff: QuantileSketch::new(),
            flips_per_mega_act: QuantileSketch::new(),
        }
    }

    /// Folds one finished device into the partial.
    ///
    /// Callers must invoke this in global device order — the population
    /// merge is commutative, but in-order folding is what makes the
    /// checkpoint frontier a single number.
    pub fn absorb(&mut self, metrics: &RunMetrics) {
        self.devices_done += 1;
        if metrics.flips > 0 {
            self.flip_devices += 1;
        }
        match metrics.time_to_first_flip {
            Some(acts) => self.ttff.insert(acts as f64),
            None => self.no_flip_devices += 1,
        }
        self.flips_per_mega_act.insert(metrics.flips_per_mega_act());
        let merged = match self.metrics.take() {
            Some(acc) => acc.merge_population(metrics.clone()),
            None => metrics.clone().without_timeseries(),
        };
        self.metrics = Some(merged);
    }
}

impl Default for CohortPartial {
    fn default() -> Self {
        CohortPartial::new()
    }
}

/// A resumable snapshot of a partially-run campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// [`crate::CampaignSpec::fingerprint`] of the campaign this
    /// snapshot belongs to.
    pub fingerprint: u64,
    /// Devices `[0, frontier)` are folded into the partials.
    pub frontier: u64,
    /// Per-cohort aggregation state, in spec order.
    pub cohorts: Vec<CohortPartial>,
}

impl Checkpoint {
    /// Serializes to JSON (deterministic byte-for-byte).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint back from [`Checkpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_metrics(i: u64) -> RunMetrics {
        RunMetrics {
            technique: "PARA".into(),
            workload_activations: 1000 + i,
            aggressor_activations: 100,
            mitigation_activations: 10,
            trigger_events: 5,
            false_positive_events: 1,
            flips: usize::try_from(i % 2).expect("small"),
            max_disturbance: 40,
            flip_threshold: 2000,
            first_trigger_act: Some(30 + i),
            time_to_first_flip: (i % 2 == 1).then_some(500 + i),
            flip_log: Vec::new(),
            storage_bytes_per_bank: 64.0,
            intervals: 128,
            timeseries: None,
            cycle: None,
        }
    }

    #[test]
    fn absorb_tracks_flip_populations() {
        let mut partial = CohortPartial::new();
        for i in 0..6 {
            partial.absorb(&device_metrics(i));
        }
        assert_eq!(partial.devices_done, 6);
        assert_eq!(partial.flip_devices, 3);
        assert_eq!(partial.no_flip_devices, 3);
        assert_eq!(partial.ttff.count(), 3);
        assert_eq!(partial.flips_per_mega_act.count(), 6);
        let merged = partial.metrics.expect("absorbed");
        assert_eq!(merged.technique, "PARA");
        assert_eq!(merged.flips, 3);
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let mut partial = CohortPartial::new();
        partial.absorb(&device_metrics(1));
        let checkpoint = Checkpoint {
            fingerprint: 0xDEAD_BEEF,
            frontier: 1,
            cohorts: vec![partial, CohortPartial::new()],
        };
        let back = Checkpoint::from_json(&checkpoint.to_json()).expect("parses");
        assert_eq!(checkpoint, back);
    }
}
