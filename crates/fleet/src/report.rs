//! The campaign's deliverable: per-cohort population statistics.

use crate::checkpoint::CohortPartial;
use crate::cohort::CampaignSpec;
use crate::sketch::QuantileSketch;
use rh_harness::RunMetrics;
use serde::{Deserialize, Serialize};

/// Headline quantiles of one sketched population distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Samples in the distribution.
    pub count: u64,
    /// Median (`None` when empty).
    pub p50: Option<f64>,
    /// 90th percentile.
    pub p90: Option<f64>,
    /// 99th percentile — the weak tail the fleet exists to measure.
    pub p99: Option<f64>,
}

impl SketchSummary {
    /// Summarizes a sketch (quantiles are the sketch's upper-bracket
    /// estimates, within its relative-accuracy guarantee).
    pub fn of(sketch: &QuantileSketch) -> Self {
        SketchSummary {
            count: sketch.count(),
            p50: sketch.quantile(0.5),
            p90: sketch.quantile(0.9),
            p99: sketch.quantile(0.99),
        }
    }
}

/// One cohort's population report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortReport {
    /// Cohort label from the spec.
    pub name: String,
    /// Devices run.
    pub devices: u64,
    /// Devices with at least one bit flip.
    pub flip_devices: u64,
    /// Devices that never flipped.
    pub no_flip_devices: u64,
    /// Population merge of the cohort's per-device metrics
    /// ([`RunMetrics::merge_population`]); `None` for an empty cohort.
    pub metrics: Option<RunMetrics>,
    /// Time-to-first-flip distribution over flipping devices
    /// (bank-local activations).
    pub time_to_first_flip: SketchSummary,
    /// Flips-per-mega-activation distribution over all devices.
    pub flips_per_mega_act: SketchSummary,
}

/// The final report of a campaign: a pure function of the
/// [`CampaignSpec`], byte-identical across worker counts, schedules,
/// and checkpoint cuts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The campaign seed.
    pub seed: u64,
    /// The spec fingerprint ([`CampaignSpec::fingerprint`]).
    pub fingerprint: u64,
    /// Total devices run.
    pub devices: u64,
    /// Per-cohort reports, in spec order.
    pub cohorts: Vec<CohortReport>,
}

impl FleetReport {
    /// Builds the report from the finished per-cohort partials.
    pub fn new(spec: &CampaignSpec, partials: &[CohortPartial]) -> Self {
        assert_eq!(spec.cohorts.len(), partials.len(), "one partial per cohort");
        let cohorts = spec
            .cohorts
            .iter()
            .zip(partials)
            .map(|(cohort, partial)| CohortReport {
                name: cohort.name.clone(),
                devices: partial.devices_done,
                flip_devices: partial.flip_devices,
                no_flip_devices: partial.no_flip_devices,
                metrics: partial.metrics.clone(),
                time_to_first_flip: SketchSummary::of(&partial.ttff),
                flips_per_mega_act: SketchSummary::of(&partial.flips_per_mega_act),
            })
            .collect();
        FleetReport {
            seed: spec.seed,
            fingerprint: spec.fingerprint(),
            devices: partials.iter().map(|p| p.devices_done).sum(),
            cohorts,
        }
    }

    /// Serializes to JSON — the canonical byte-comparable form the
    /// determinism suite asserts on.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parses a report back from [`FleetReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortSpec;

    #[test]
    fn report_summarizes_partials_in_cohort_order() {
        let spec = CampaignSpec::new(2)
            .cohort(CohortSpec::new("a", 1))
            .cohort(CohortSpec::new("b", 1));
        let mut partial = CohortPartial::new();
        partial.devices_done = 1;
        partial.flip_devices = 1;
        partial.ttff.insert(100.0);
        partial.flips_per_mega_act.insert(2.0);
        let report = FleetReport::new(&spec, &[partial, CohortPartial::new()]);
        assert_eq!(report.devices, 1);
        assert_eq!(report.cohorts.len(), 2);
        assert_eq!(report.cohorts[0].name, "a");
        assert_eq!(report.cohorts[0].time_to_first_flip.count, 1);
        assert!(report.cohorts[0].time_to_first_flip.p50.expect("sampled") >= 100.0);
        assert_eq!(report.cohorts[1].devices, 0);
        assert_eq!(report.cohorts[1].time_to_first_flip.p50, None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let spec = CampaignSpec::new(2).cohort(CohortSpec::new("a", 1));
        let report = FleetReport::new(&spec, &[CohortPartial::new()]);
        let back = FleetReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(report, back);
    }
}
