//! A deterministic, mergeable quantile sketch over non-negative values.
//!
//! DDSketch-style logarithmic buckets: value `x > 0` lands in bucket
//! `k` with `γ^(k-1) < x ≤ γ^k`, so every value in a bucket is within a
//! relative factor `γ` of the bucket's upper bound.  Counts are exact
//! `u64`s, bucket keys are exact `i64`s, and merging is bucket-wise
//! addition — an associative, commutative operation whose result is a
//! pure function of the multiset of inserted values, never of insertion
//! or merge order.  That is the property the fleet layer needs: shards
//! of a campaign can sketch independently and merge in any grouping
//! with *byte-identical* serialized results.
//!
//! The rank guarantee: [`QuantileSketch::quantile_bracket`] returns
//! `(lo, hi)` with `count(x ≤ hi) ≥ r` and `count(x ≤ lo) < r` for the
//! target rank `r` — the true rank-`r` value lies in `(lo, hi]`, an
//! interval of relative width `γ`.  The bucket invariant is enforced
//! with the same `γ^k` computation the bracket reports
//! ([`QuantileSketch::bucket_value`]), so the guarantee holds exactly,
//! not just up to floating-point rounding.

use serde::{Deserialize, Serialize};

/// Default relative accuracy: bucket bounds within 2% of each other.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A mergeable log-bucket quantile sketch for non-negative samples.
///
/// ```
/// use rh_fleet::QuantileSketch;
///
/// let mut sketch = QuantileSketch::new();
/// for x in 1..=100 {
///     sketch.insert(f64::from(x));
/// }
/// let p50 = sketch.quantile(0.5).expect("non-empty");
/// assert!((p50 - 50.0).abs() / 50.0 < 0.03);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Bucket growth factor `γ = (1 + α) / (1 - α)`.
    gamma: f64,
    /// Samples equal to zero (they have no logarithm).
    zero_count: u64,
    /// Total inserted samples, including zeros.
    total: u64,
    /// `(bucket key, count)`, sorted by key — a sorted vec rather than
    /// a map so the serialized form is canonical and byte-stable.
    buckets: Vec<(i64, u64)>,
}

impl QuantileSketch {
    /// A sketch at the default relative accuracy [`DEFAULT_ALPHA`].
    pub fn new() -> Self {
        QuantileSketch::with_alpha(DEFAULT_ALPHA)
    }

    /// A sketch with relative accuracy `alpha` (0 < alpha < 1).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        QuantileSketch {
            gamma: (1.0 + alpha) / (1.0 - alpha),
            zero_count: 0,
            total: 0,
            buckets: Vec::new(),
        }
    }

    /// Samples inserted so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been inserted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The bucket growth factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The upper value bound `γ^key` of a bucket.
    ///
    /// This is the *only* way bucket bounds are computed — inserts
    /// enforce the bucket invariant against it, so quantile brackets
    /// built from it are exact.
    pub fn bucket_value(&self, key: i64) -> f64 {
        self.gamma.powf(key as f64)
    }

    /// The bucket key of a positive sample: the smallest `k` with
    /// `x ≤ γ^k`, i.e. `γ^(k-1) < x ≤ γ^k` by the same
    /// [`QuantileSketch::bucket_value`] arithmetic the quantile side
    /// uses.
    fn bucket_key(&self, x: f64) -> i64 {
        // The rounded log is only a seed guess; the adjustment loops
        // below re-anchor it, so truncation cannot move the bucket.
        #[allow(clippy::cast_possible_truncation)]
        let mut key = (x.ln() / self.gamma.ln()).ceil() as i64;
        // `ln`/`ceil` land within one bucket of the invariant; the
        // adjustment loops pin it exactly in `bucket_value` arithmetic,
        // so rank brackets hold with no floating-point slack.
        while self.bucket_value(key) < x {
            key += 1;
        }
        while self.bucket_value(key - 1) >= x {
            key -= 1;
        }
        key
    }

    /// Inserts one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative samples — the fleet's sketched
    /// quantities (first-flip times, flip rates) are non-negative by
    /// construction, so a negative here is an upstream bug.
    pub fn insert(&mut self, x: f64) {
        assert!(x >= 0.0, "sketch samples must be non-negative, got {x}");
        self.total += 1;
        if x == 0.0 {
            self.zero_count += 1;
            return;
        }
        let key = self.bucket_key(x);
        match self.buckets.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (key, 1)),
        }
    }

    /// Merges `other` into `self` (bucket-wise count addition).
    ///
    /// Associative and commutative: the result depends only on the
    /// multiset of inserted samples, so fleet shards can merge in any
    /// grouping and compare sketches with `==`.
    ///
    /// # Panics
    ///
    /// Panics when the sketches were built with different accuracies
    /// (their buckets would not align).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.gamma == other.gamma,
            "cannot merge sketches with different accuracies"
        );
        self.zero_count += other.zero_count;
        self.total += other.total;
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() && j < other.buckets.len() {
            let (ka, ca) = self.buckets[i];
            let (kb, cb) = other.buckets[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    merged.push((ka, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((kb, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ka, ca + cb));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.buckets[i..]);
        merged.extend_from_slice(&other.buckets[j..]);
        self.buckets = merged;
    }

    /// The 1-based target rank of quantile `q` over `n` samples:
    /// `max(1, ⌈q·n⌉)`, clamped to `n`.
    fn rank(&self, q: f64) -> u64 {
        // `q ≤ 1`, so `q·n ≤ n` fits u64 exactly; the clamp also pins
        // any rounding at the ends.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let r = (q * self.total as f64).ceil() as u64;
        r.clamp(1, self.total)
    }

    /// An estimate of quantile `q ∈ [0, 1]`, or `None` when empty.
    ///
    /// The estimate is the upper bound of the bucket holding the
    /// rank-`⌈q·n⌉` sample — within a relative factor γ above the true
    /// quantile (and never below it); see
    /// [`QuantileSketch::quantile_bracket`] for the exact guarantee.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bracket(q).map(|(_, hi)| hi)
    }

    /// The exact rank bracket of quantile `q`: `Some((lo, hi))` such
    /// that for the target rank `r = max(1, ⌈q·n⌉)`,
    /// `count(x ≤ hi) ≥ r` and `count(x ≤ lo) < r`.  Returns `None`
    /// when the sketch is empty.  For zero-valued samples the bracket
    /// is `(-1.0, 0.0)` (zeros sort below every bucket).
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]` or NaN.
    pub fn quantile_bracket(&self, q: f64) -> Option<(f64, f64)> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.total == 0 {
            return None;
        }
        let r = self.rank(q);
        if r <= self.zero_count {
            return Some((-1.0, 0.0));
        }
        let mut cum = self.zero_count;
        for &(key, count) in &self.buckets {
            cum += count;
            if cum >= r {
                // Every sample at or below this bucket is ≤ γ^key
                // (zeros included, since γ^(key-1) > 0), and fewer
                // than r samples are ≤ γ^(key-1): exactly the bucket
                // invariant `insert` enforced.
                return Some((self.bucket_value(key - 1), self.bucket_value(key)));
            }
        }
        unreachable!("total covers all buckets");
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sketch = QuantileSketch::new();
        assert!(sketch.is_empty());
        assert_eq!(sketch.quantile(0.5), None);
    }

    #[test]
    fn singleton_brackets_its_value() {
        let mut sketch = QuantileSketch::new();
        sketch.insert(42.0);
        for q in [0.0, 0.5, 1.0] {
            let (lo, hi) = sketch.quantile_bracket(q).expect("one sample");
            assert!(lo < 42.0 && 42.0 <= hi, "q={q}: ({lo}, {hi}]");
        }
    }

    #[test]
    fn zeros_live_below_every_bucket() {
        let mut sketch = QuantileSketch::new();
        sketch.insert(0.0);
        sketch.insert(0.0);
        sketch.insert(10.0);
        assert_eq!(sketch.quantile(0.5), Some(0.0));
        let p99 = sketch.quantile(0.99).expect("non-empty");
        assert!(p99 >= 10.0);
    }

    #[test]
    fn merge_is_exact_bucket_addition() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for x in 1..=50 {
            a.insert(f64::from(x));
        }
        for x in 51..=100 {
            b.insert(f64::from(x));
        }
        let mut whole = QuantileSketch::new();
        for x in 1..=100 {
            whole.insert(f64::from(x));
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn merging_mismatched_accuracies_panics() {
        let mut a = QuantileSketch::with_alpha(0.01);
        a.merge(&QuantileSketch::with_alpha(0.02));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_samples_panic() {
        QuantileSketch::new().insert(-1.0);
    }

    #[test]
    fn serialization_round_trips() {
        let mut sketch = QuantileSketch::new();
        for x in [0.0, 0.5, 3.0, 3.0, 1e9] {
            sketch.insert(x);
        }
        let json = serde_json::to_string(&sketch).expect("serializes");
        let back: QuantileSketch = serde_json::from_str(&json).expect("parses");
        assert_eq!(sketch, back);
    }
}
