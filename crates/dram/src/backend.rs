//! Pluggable disturbance backends: fidelity as a trait-level choice.
//!
//! The event-accurate [`DramDevice`] is one way to account for
//! disturbance — the bit-exact way, and the default.  But different
//! questions want different fidelity: a million-device fleet sweep
//! cares about aggregate flip counts, not the per-event order of
//! counter updates, while the paper's performance-overhead story wants
//! *more* state than the exact model keeps — row-buffer hits and
//! command timing, so a mitigation-issued `act_n` has a bandwidth
//! price, not just an activation count.
//!
//! [`DisturbanceBackend`] is the narrow interface the run engine
//! drives: feed it [`Command`]s, read back flips, activity statistics
//! and the disturbance high-water mark.  Three implementations ship:
//!
//! | tier | type | guarantees |
//! |------|------|------------|
//! | `exact` | [`DramDevice`] | bit-identical to the historical engine; the default |
//! | `fast`  | [`crate::FastBackend`] | per-interval accumulation; command-stream metrics exact, physics within declared tolerances |
//! | `cycle` | [`crate::CycleBackend`] | exact model **plus** row-buffer state and per-command cycle costs ([`CycleStats`]) |
//!
//! Selection is by [`BackendSpec`], a serde-able enum with
//! `Display`/`FromStr` so configs and CLIs (`--backend exact|fast|cycle`)
//! name tiers the same way.
//!
//! Every tier honours the determinism contract: banks never couple, all
//! per-bank state merges associatively, so sequential and bank-sharded
//! runs are byte-identical at any worker count.

use crate::{BankId, Command, DeviceStats, DramDevice, FlipEvent, RowAddr};
use serde::{Deserialize, Serialize};

/// The interface between the run engine and a disturbance model.
///
/// The engine issues one [`Command`] at a time (in trace order within a
/// bank; `Refresh` closes every interval) and reads results through the
/// accessors.  Implementations may defer work — the fast tier resolves
/// disturbance only at `Refresh` — but after any `apply` returns, the
/// [`DisturbanceBackend::flips`] log must already contain every flip
/// the model attributes to the commands applied so far.
pub trait DisturbanceBackend {
    /// Applies one command.
    fn apply(&mut self, command: Command);

    /// Whether the tier defers *all* flip detection to the `Refresh`
    /// boundary: [`DisturbanceBackend::flips`] cannot grow from any
    /// command other than `Refresh` — not activations, and not
    /// mitigation commands either.  When true, an engine may skip
    /// per-event flip polling and feed action-free stretches of a
    /// segment through [`DisturbanceBackend::apply_activations`].
    fn defers_flips(&self) -> bool {
        false
    }

    /// Applies a column-slice of workload activations.  Semantically
    /// identical to applying `Command::Activate` per element in order;
    /// deferring tiers override it with a tight accumulation loop.
    fn apply_activations(&mut self, banks: &[BankId], rows: &[RowAddr]) {
        for (&bank, &row) in banks.iter().zip(rows) {
            self.apply(Command::Activate { bank, row });
        }
    }

    /// All flips recorded so far, in detection order.  The engine reads
    /// only the suffix past its own cursor, so the slice must be
    /// append-only.
    fn flips(&self) -> &[FlipEvent];

    /// Aggregate activity counters.
    fn stats(&self) -> DeviceStats;

    /// Highest disturbance counter observed anywhere, in whole
    /// activations (the attack margin).
    fn max_disturbance_seen(&self) -> u32;

    /// The underlying event-accurate device, when the tier keeps one —
    /// deep per-row inspection (histograms) is only available then.
    fn device(&self) -> Option<&DramDevice> {
        None
    }

    /// Cycle-level accounting, when the tier models it.
    fn cycle_stats(&self) -> Option<CycleStats> {
        None
    }
}

/// The exact tier: the event-accurate device *is* a backend.
impl DisturbanceBackend for DramDevice {
    #[inline]
    fn apply(&mut self, command: Command) {
        DramDevice::apply(self, command);
    }

    #[inline]
    fn flips(&self) -> &[FlipEvent] {
        DramDevice::flips(self)
    }

    fn stats(&self) -> DeviceStats {
        DramDevice::stats(self)
    }

    fn max_disturbance_seen(&self) -> u32 {
        DramDevice::max_disturbance_seen(self)
    }

    fn device(&self) -> Option<&DramDevice> {
        Some(self)
    }
}

/// Which disturbance backend a run uses.
///
/// Serde-able (lowercase strings), with `Display`/`FromStr` for CLI
/// round-trips:
///
/// ```
/// use dram_sim::BackendSpec;
/// assert_eq!("fast".parse::<BackendSpec>(), Ok(BackendSpec::Fast));
/// assert_eq!(BackendSpec::Cycle.to_string(), "cycle");
/// assert_eq!(BackendSpec::default(), BackendSpec::Exact);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendSpec {
    /// The event-accurate model — bit-identical to the historical
    /// engine, and the default.
    #[default]
    Exact,
    /// Batch-level accumulation ([`crate::FastBackend`]) for
    /// fleet-scale sweeps.
    Fast,
    /// Row-buffer + command-timing model ([`crate::CycleBackend`]).
    Cycle,
}

impl BackendSpec {
    /// Every tier, in fidelity order (for sweeps and tables).
    pub const ALL: [BackendSpec; 3] = [BackendSpec::Exact, BackendSpec::Fast, BackendSpec::Cycle];

    /// The canonical lowercase name (`Display` and `FromStr` agree).
    pub fn name(self) -> &'static str {
        match self {
            BackendSpec::Exact => "exact",
            BackendSpec::Fast => "fast",
            BackendSpec::Cycle => "cycle",
        }
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(BackendSpec::Exact),
            "fast" => Ok(BackendSpec::Fast),
            "cycle" => Ok(BackendSpec::Cycle),
            other => Err(format!(
                "unknown backend {other:?} (expected exact, fast or cycle)"
            )),
        }
    }
}

impl Serialize for BackendSpec {
    fn to_json_value(&self) -> serde::json::Value {
        serde::json::Value::Str(self.name().to_string())
    }
}

impl Deserialize for BackendSpec {
    fn from_json_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        match v {
            serde::json::Value::Str(s) => s.parse().map_err(serde::json::Error::new),
            other => Err(serde::json::Error::new(format!(
                "BackendSpec: expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// Configs and specs written before backends existed carry no
    /// `backend` field: they ran the exact tier, so they parse to it.
    fn if_absent() -> Option<Self> {
        Some(BackendSpec::Exact)
    }
}

/// Cycle-level accounting of the `cycle` tier.
///
/// Raw counters only — every field sums across disjoint bank shards
/// except `refresh_cycles`, which (like a run's interval count) is
/// per-interval and merges by maximum; the derived rates live in
/// methods so merged stats stay exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Cycles spent serving workload activations (row-buffer hits cost
    /// a column access, misses a full activate).
    pub workload_cycles: u64,
    /// Cycles spent on mitigation-issued commands (`act_n` neighbor
    /// activations, victim refreshes) — the bandwidth the defense
    /// steals from the workload.
    pub mitigation_cycles: u64,
    /// Cycles spent executing auto-refresh (tRFC per interval).
    pub refresh_cycles: u64,
    /// Workload activations that hit the open row.
    pub row_buffer_hits: u64,
    /// Workload activations that missed (row activate required).
    pub row_buffer_misses: u64,
}

impl CycleStats {
    /// All cycles accounted: workload + mitigation + refresh.
    pub fn total_cycles(&self) -> u64 {
        self.workload_cycles + self.mitigation_cycles + self.refresh_cycles
    }

    /// Share of workload activations served from the open row, in
    /// `[0, 1]` (0 for an empty run).
    pub fn row_buffer_hit_rate(&self) -> f64 {
        let total = self.row_buffer_hits + self.row_buffer_misses;
        if total == 0 {
            0.0
        } else {
            self.row_buffer_hits as f64 / total as f64
        }
    }

    /// Mitigation cycles in percent of workload cycles — the
    /// cycle-level analogue of the activation overhead, and the
    /// honest cost of an `act_n`-heavy defense (0 for an empty run).
    pub fn bandwidth_overhead_percent(&self) -> f64 {
        if self.workload_cycles == 0 {
            0.0
        } else {
            100.0 * self.mitigation_cycles as f64 / self.workload_cycles as f64
        }
    }

    /// Combines the stats of two disjoint bank shards of one run:
    /// per-command counters sum; `refresh_cycles` takes the maximum
    /// (every shard executes the same refresh intervals, exactly like
    /// the run's `intervals` metric).  Associative and commutative, so
    /// shard merges are order-independent.
    #[must_use]
    pub fn merge(self, other: CycleStats) -> CycleStats {
        CycleStats {
            workload_cycles: self.workload_cycles + other.workload_cycles,
            mitigation_cycles: self.mitigation_cycles + other.mitigation_cycles,
            refresh_cycles: self.refresh_cycles.max(other.refresh_cycles),
            row_buffer_hits: self.row_buffer_hits + other.row_buffer_hits,
            row_buffer_misses: self.row_buffer_misses + other.row_buffer_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BankId, Geometry, RowAddr};

    #[test]
    fn spec_display_fromstr_round_trip() {
        for spec in BackendSpec::ALL {
            assert_eq!(spec.to_string().parse::<BackendSpec>(), Ok(spec));
        }
        assert!("EXACT".parse::<BackendSpec>().is_err());
        assert!("".parse::<BackendSpec>().is_err());
    }

    #[test]
    fn spec_serde_uses_lowercase_names() {
        for spec in BackendSpec::ALL {
            let json = serde_json::to_string(&spec).expect("serializes");
            assert_eq!(json, format!("\"{spec}\""));
            let back: BackendSpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn device_implements_the_exact_tier() {
        let mut device = DramDevice::new(Geometry::new(64, 1, 8).expect("geometry"));
        device.set_flip_threshold(5);
        let backend: &mut dyn DisturbanceBackend = &mut device;
        for _ in 0..5 {
            backend.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(10),
            });
        }
        assert_eq!(backend.flips().len(), 2);
        assert_eq!(backend.stats().workload_activations, 5);
        assert_eq!(backend.max_disturbance_seen(), 5);
        assert!(backend.device().is_some());
        assert_eq!(backend.cycle_stats(), None);
    }

    #[test]
    fn cycle_stats_rates_and_merge() {
        let a = CycleStats {
            workload_cycles: 1000,
            mitigation_cycles: 40,
            refresh_cycles: 420,
            row_buffer_hits: 30,
            row_buffer_misses: 10,
        };
        let b = CycleStats {
            workload_cycles: 500,
            mitigation_cycles: 10,
            refresh_cycles: 420,
            row_buffer_hits: 10,
            row_buffer_misses: 50,
        };
        assert!((a.row_buffer_hit_rate() - 0.75).abs() < 1e-12);
        assert!((a.bandwidth_overhead_percent() - 4.0).abs() < 1e-12);
        assert_eq!(a.total_cycles(), 1460);
        let m = a.merge(b);
        assert_eq!(m.workload_cycles, 1500);
        assert_eq!(m.mitigation_cycles, 50);
        // Per-interval cost: shards of one run take the max, not 2x.
        assert_eq!(m.refresh_cycles, 420);
        assert_eq!(m.row_buffer_hits, 40);
        assert_eq!(m.row_buffer_misses, 60);
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn cycle_stats_empty_run_rates_are_zero() {
        let empty = CycleStats::default();
        assert_eq!(empty.row_buffer_hit_rate(), 0.0);
        assert_eq!(empty.bandwidth_overhead_percent(), 0.0);
        assert_eq!(empty.total_cycles(), 0);
    }
}
