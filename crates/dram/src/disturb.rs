//! Per-bank disturbance accounting — the physical core of the row-hammer
//! model.
//!
//! Every row carries a disturbance counter: the number of aggressor
//! activations its neighbors have performed since the row's charge was
//! last restored (by refreshing it or by activating it).  When the
//! counter reaches the flip threshold the row's data is considered
//! corrupted — a successful row-hammer attack.

use crate::{RowAddr, FLIP_THRESHOLD};
use serde::{Deserialize, Serialize};

/// Fixed-point scale of the internal disturbance counters: counts are
/// kept in sixteenths of an activation so that fractional distance-2
/// coupling (the blast-radius extension) composes with the integer
/// distance-1 model without floating point on the hot path.
pub const DISTURB_SCALE: u32 = 16;

/// Disturbance state of one bank.
///
/// ```
/// use dram_sim::{DisturbState, RowAddr};
/// let mut bank = DisturbState::new(16, 3);
/// // Hammering row 5 disturbs rows 4 and 6:
/// for _ in 0..3 {
///     bank.restore(RowAddr(5));       // activation restores the row itself…
///     bank.disturb(RowAddr(4));       // …and disturbs its neighbors
///     bank.disturb(RowAddr(6));
/// }
/// assert!(bank.is_flipped(RowAddr(4)));
/// assert_eq!(bank.disturbance(RowAddr(6)), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisturbState {
    /// Counters in sixteenths of an activation (see [`DISTURB_SCALE`]).
    counters: Vec<u32>,
    flipped: Vec<bool>,
    /// Threshold in whole activations.
    flip_threshold: u32,
    /// Rows that newly crossed the threshold since the last call to
    /// [`DisturbState::take_new_flips`].
    new_flips: Vec<RowAddr>,
    /// Highest disturbance value ever observed (attack-margin metric).
    max_disturbance_seen: u32,
    /// Per-row threshold overrides in whole activations.  Empty (the
    /// default) means every row uses the uniform [`Self::flip_threshold`];
    /// non-empty means row `r` flips at `row_thresholds[r]` — the
    /// heterogeneous weak-cell model (see `crate::weakmap`).
    row_thresholds: Vec<u32>,
}

impl DisturbState {
    /// Creates the state for a bank of `rows` rows with the given flip
    /// threshold (use [`FLIP_THRESHOLD`] for the paper's 139 K).
    pub fn new(rows: u32, flip_threshold: u32) -> Self {
        DisturbState {
            counters: vec![0; rows as usize],
            flipped: vec![false; rows as usize],
            flip_threshold,
            new_flips: Vec::new(),
            max_disturbance_seen: 0,
            row_thresholds: Vec::new(),
        }
    }

    /// Creates the state with the paper's 139 K threshold.
    pub fn with_paper_threshold(rows: u32) -> Self {
        DisturbState::new(rows, FLIP_THRESHOLD)
    }

    /// Registers one full disturbance event on `row` (an immediate
    /// neighbor of `row` was activated).  Records a flip the first time
    /// the counter reaches the threshold.
    #[inline]
    pub fn disturb(&mut self, row: RowAddr) {
        self.disturb_scaled(row, DISTURB_SCALE);
    }

    /// Registers a fractional disturbance event in sixteenths of an
    /// activation — distance-2 coupling in the blast-radius extension.
    #[inline]
    pub fn disturb_scaled(&mut self, row: RowAddr, sixteenths: u32) {
        let c = &mut self.counters[row.index()];
        *c += sixteenths;
        if *c > self.max_disturbance_seen {
            self.max_disturbance_seen = *c;
        }
        let threshold = match self.row_thresholds.get(row.index()) {
            Some(&t) => t,
            None => self.flip_threshold,
        };
        if *c >= threshold.saturating_mul(DISTURB_SCALE) && !self.flipped[row.index()] {
            self.flipped[row.index()] = true;
            self.new_flips.push(row);
        }
    }

    /// Restores `row`'s charge (the row was activated or refreshed):
    /// its disturbance counter resets to zero.
    ///
    /// A flip that already happened is *not* undone — refreshing a
    /// corrupted row rewrites the corrupted data.
    #[inline]
    pub fn restore(&mut self, row: RowAddr) {
        self.counters[row.index()] = 0;
    }

    /// Current disturbance of `row`, in whole activations (fractional
    /// distance-2 contributions are truncated).
    #[inline]
    pub fn disturbance(&self, row: RowAddr) -> u32 {
        self.counters[row.index()] / DISTURB_SCALE
    }

    /// Whether `row` has ever crossed the flip threshold.
    #[inline]
    pub fn is_flipped(&self, row: RowAddr) -> bool {
        self.flipped[row.index()]
    }

    /// Drains the rows that crossed the threshold since the last call.
    pub fn take_new_flips(&mut self) -> Vec<RowAddr> {
        std::mem::take(&mut self.new_flips)
    }

    /// Total number of rows that have flipped.
    pub fn flipped_count(&self) -> usize {
        self.flipped.iter().filter(|&&f| f).count()
    }

    /// Largest disturbance ever reached in this bank, in whole
    /// activations — how close the closest-run attack came to the
    /// threshold.
    pub fn max_disturbance_seen(&self) -> u32 {
        self.max_disturbance_seen / DISTURB_SCALE
    }

    /// The configured flip threshold.
    pub fn flip_threshold(&self) -> u32 {
        self.flip_threshold
    }

    /// Changes the flip threshold (used by small-scale tests/examples).
    pub fn set_flip_threshold(&mut self, threshold: u32) {
        self.flip_threshold = threshold;
    }

    /// Installs per-row flip thresholds (whole activations), one per
    /// tracked row — the heterogeneous weak-cell model.  Rows keep
    /// their already-recorded flips; only future threshold checks use
    /// the per-row values.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` does not cover every tracked row.
    pub fn set_row_thresholds(&mut self, thresholds: Vec<u32>) {
        assert_eq!(
            thresholds.len(),
            self.counters.len(),
            "one threshold per tracked row"
        );
        self.row_thresholds = thresholds;
    }

    /// Removes per-row thresholds, returning to the uniform model.
    pub fn clear_row_thresholds(&mut self) {
        self.row_thresholds.clear();
    }

    /// Effective flip threshold of `row`: its per-row override when a
    /// weak-cell map is installed, the uniform threshold otherwise.
    pub fn row_threshold(&self, row: RowAddr) -> u32 {
        match self.row_thresholds.get(row.index()) {
            Some(&t) => t,
            None => self.flip_threshold,
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> u32 {
        u32::try_from(self.counters.len()).expect("row count fits u32")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disturb_accumulates_and_restore_resets() {
        let mut s = DisturbState::new(8, 100);
        s.disturb(RowAddr(3));
        s.disturb(RowAddr(3));
        assert_eq!(s.disturbance(RowAddr(3)), 2);
        s.restore(RowAddr(3));
        assert_eq!(s.disturbance(RowAddr(3)), 0);
        assert!(!s.is_flipped(RowAddr(3)));
    }

    #[test]
    fn flip_fires_exactly_once_at_threshold() {
        let mut s = DisturbState::new(8, 3);
        s.disturb(RowAddr(1));
        s.disturb(RowAddr(1));
        assert!(s.take_new_flips().is_empty());
        s.disturb(RowAddr(1));
        assert_eq!(s.take_new_flips(), vec![RowAddr(1)]);
        assert!(s.is_flipped(RowAddr(1)));
        // Further disturbance does not re-report the same row.
        s.disturb(RowAddr(1));
        assert!(s.take_new_flips().is_empty());
        assert_eq!(s.flipped_count(), 1);
    }

    #[test]
    fn restore_does_not_undo_flip() {
        let mut s = DisturbState::new(8, 2);
        s.disturb(RowAddr(0));
        s.disturb(RowAddr(0));
        assert!(s.is_flipped(RowAddr(0)));
        s.restore(RowAddr(0));
        assert!(s.is_flipped(RowAddr(0)));
        assert_eq!(s.disturbance(RowAddr(0)), 0);
    }

    #[test]
    fn max_disturbance_tracks_high_watermark() {
        let mut s = DisturbState::new(8, 1000);
        for _ in 0..5 {
            s.disturb(RowAddr(2));
        }
        s.restore(RowAddr(2));
        for _ in 0..3 {
            s.disturb(RowAddr(2));
        }
        assert_eq!(s.max_disturbance_seen(), 5);
    }

    #[test]
    fn paper_threshold_is_139k() {
        let s = DisturbState::with_paper_threshold(4);
        assert_eq!(s.flip_threshold(), 139_000);
        assert_eq!(s.rows(), 4);
    }

    #[test]
    fn scaled_disturbance_accumulates_fractions() {
        let mut s = DisturbState::new(8, 2);
        // 4/16 per event: 8 events = 2 whole activations → flip.
        for _ in 0..7 {
            s.disturb_scaled(RowAddr(1), 4);
        }
        assert!(!s.is_flipped(RowAddr(1)));
        assert_eq!(s.disturbance(RowAddr(1)), 1); // 28/16 truncated
        s.disturb_scaled(RowAddr(1), 4);
        assert!(s.is_flipped(RowAddr(1)));
    }

    #[test]
    fn per_row_thresholds_override_the_uniform_one() {
        let mut s = DisturbState::new(4, 100);
        s.set_row_thresholds(vec![100, 2, 100, 100]);
        s.disturb(RowAddr(1));
        s.disturb(RowAddr(2));
        s.disturb(RowAddr(1));
        s.disturb(RowAddr(2));
        // Row 1 is weak (threshold 2), row 2 is strong (100).
        assert_eq!(s.take_new_flips(), vec![RowAddr(1)]);
        assert!(!s.is_flipped(RowAddr(2)));
        assert_eq!(s.row_threshold(RowAddr(1)), 2);
        assert_eq!(s.row_threshold(RowAddr(0)), 100);
    }

    #[test]
    fn clearing_row_thresholds_restores_the_uniform_model() {
        let mut s = DisturbState::new(4, 3);
        s.set_row_thresholds(vec![1000; 4]);
        for _ in 0..5 {
            s.disturb(RowAddr(0));
        }
        assert!(!s.is_flipped(RowAddr(0)));
        s.clear_row_thresholds();
        assert_eq!(s.row_threshold(RowAddr(0)), 3);
        s.disturb(RowAddr(0));
        assert!(s.is_flipped(RowAddr(0)));
    }

    #[test]
    #[should_panic(expected = "one threshold per tracked row")]
    fn row_threshold_length_mismatch_rejected() {
        DisturbState::new(4, 3).set_row_thresholds(vec![1, 2]);
    }

    #[test]
    fn scaled_and_whole_events_compose() {
        let mut s = DisturbState::new(8, 3);
        s.disturb(RowAddr(2)); // 1.0
        s.disturb_scaled(RowAddr(2), 16); // 1.0
        s.disturb_scaled(RowAddr(2), 15); // 0.9375 → total 2.9375 < 3
        assert!(!s.is_flipped(RowAddr(2)));
        s.disturb_scaled(RowAddr(2), 1);
        assert!(s.is_flipped(RowAddr(2)));
    }
}
