//! Error types for device and geometry construction.

use std::error::Error;
use std::fmt;

/// Error returned when a device configuration is internally inconsistent.
///
/// ```
/// use dram_sim::Geometry;
/// // 10 rows cannot be split evenly into 4 refresh intervals.
/// assert!(Geometry::new(10, 1, 4).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `rows_per_bank` must be a positive multiple of the interval count.
    RowsNotDivisible {
        /// Configured number of rows per bank.
        rows_per_bank: u32,
        /// Configured number of refresh intervals per window.
        intervals_per_window: u32,
    },
    /// A structural parameter was zero.
    ZeroParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// A row address is outside the bank.
    RowOutOfRange {
        /// The offending row.
        row: u32,
        /// Number of rows per bank.
        rows_per_bank: u32,
    },
    /// A bank id is outside the device.
    BankOutOfRange {
        /// The offending bank.
        bank: u32,
        /// Number of banks.
        banks: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RowsNotDivisible {
                rows_per_bank,
                intervals_per_window,
            } => write!(
                f,
                "rows per bank ({rows_per_bank}) is not divisible by refresh intervals per window ({intervals_per_window})"
            ),
            ConfigError::ZeroParameter { name } => {
                write!(f, "configuration parameter `{name}` must be nonzero")
            }
            ConfigError::RowOutOfRange { row, rows_per_bank } => {
                write!(f, "row {row} out of range for bank with {rows_per_bank} rows")
            }
            ConfigError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range for device with {banks} banks")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ConfigError::RowsNotDivisible {
            rows_per_bank: 10,
            intervals_per_window: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));

        let e = ConfigError::ZeroParameter { name: "banks" };
        assert!(e.to_string().contains("banks"));

        let e = ConfigError::RowOutOfRange {
            row: 99,
            rows_per_bank: 64,
        };
        assert!(e.to_string().contains("99"));

        let e = ConfigError::BankOutOfRange { bank: 9, banks: 4 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
