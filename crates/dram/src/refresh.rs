//! Refresh-order policies.
//!
//! TiVaPRoMi's weight equation assumes "a refresh interval refreshes rows
//! with neighboring addresses", but §IV checks the technique against
//! three alternative policies.  A [`RefreshSchedule`] materialises any
//! policy as a permutation of all rows, chunked into
//! `rows_per_interval`-sized groups — interval `i` refreshes group `i`.

use crate::{Geometry, RowAddr};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The four refresh-order policies evaluated in §IV.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RefreshOrder {
    /// (i) The paper's base assumption: interval `i` refreshes rows
    /// `i·RowsPI … (i+1)·RowsPI − 1`.
    #[default]
    SequentialNeighbors,
    /// (ii) Sequential, but with a few defected rows replaced by spares:
    /// each `(defect, spare)` pair swaps the two rows' refresh slots.
    SequentialWithReplacements {
        /// `(defected row, spare row)` swaps.
        replacements: Vec<(RowAddr, RowAddr)>,
    },
    /// (iii) A fully random (seeded) permutation of all rows.
    FullyRandom {
        /// Seed for the permutation.
        seed: u64,
    },
    /// (iv) Counter combined with a mask: the interval counter is
    /// scrambled by an odd multiplier and XOR mask before selecting the
    /// refreshed row group, a cheap hardware address-scrambling scheme.
    CounterMask {
        /// XOR mask applied to the scrambled counter.
        mask: u32,
    },
}

impl std::fmt::Display for RefreshOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshOrder::SequentialNeighbors => write!(f, "sequential neighbors"),
            RefreshOrder::SequentialWithReplacements { replacements } => {
                write!(f, "sequential with {} replacements", replacements.len())
            }
            RefreshOrder::FullyRandom { seed } => write!(f, "fully random (seed {seed})"),
            RefreshOrder::CounterMask { mask } => write!(f, "counter + mask {mask:#x}"),
        }
    }
}

/// A materialised refresh order: which rows each interval refreshes.
///
/// ```
/// use dram_sim::{Geometry, RefreshOrder, RefreshSchedule, RowAddr};
/// let g = Geometry::new(64, 1, 8)?;
/// let s = RefreshSchedule::new(&g, &RefreshOrder::SequentialNeighbors);
/// assert_eq!(s.rows_for_interval(1), &[RowAddr(8), RowAddr(9), RowAddr(10),
///     RowAddr(11), RowAddr(12), RowAddr(13), RowAddr(14), RowAddr(15)]);
/// assert_eq!(s.interval_of(RowAddr(9)), 1);
/// # Ok::<(), dram_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RefreshSchedule {
    /// All rows in refresh order; interval `i` refreshes the `i`-th chunk
    /// of `rows_per_interval` entries.
    order: Vec<RowAddr>,
    /// Inverse map: row → interval refreshing it.
    interval_of: Vec<u32>,
    rows_per_interval: u32,
}

impl RefreshSchedule {
    /// Builds the schedule for `policy` under `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if a replacement pair in
    /// [`RefreshOrder::SequentialWithReplacements`] names a row outside
    /// the bank.
    pub fn new(geometry: &Geometry, policy: &RefreshOrder) -> Self {
        let rows = geometry.rows_per_bank();
        let rpi = geometry.rows_per_interval();
        let intervals = geometry.intervals_per_window();
        let mut order: Vec<RowAddr> = (0..rows).map(RowAddr).collect();

        match policy {
            RefreshOrder::SequentialNeighbors => {}
            RefreshOrder::SequentialWithReplacements { replacements } => {
                for &(a, b) in replacements {
                    assert!(a.0 < rows && b.0 < rows, "replacement row out of range");
                    order.swap(a.index(), b.index());
                }
            }
            RefreshOrder::FullyRandom { seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
            }
            RefreshOrder::CounterMask { mask } => {
                // Scramble the *group* order: group g is refreshed at the
                // interval whose scrambled counter equals g.  An odd
                // multiplier modulo a power-of-two interval count is a
                // bijection, so every group is refreshed exactly once.
                const ODD_MULTIPLIER: u64 = 2_654_435_761; // Knuth's odd constant
                assert!(
                    intervals.is_power_of_two(),
                    "counter+mask refresh order needs a power-of-two interval count"
                );
                let mut scrambled = vec![RowAddr(0); rows as usize];
                for i in 0..intervals {
                    // Truncation to u32 IS the scramble: the low word of
                    // the Knuth product is the hashed counter.
                    #[allow(clippy::cast_possible_truncation)]
                    let g = ((u64::from(i) * ODD_MULTIPLIER) as u32 ^ mask) % intervals;
                    for k in 0..rpi {
                        scrambled[(i * rpi + k) as usize] = RowAddr(g * rpi + k);
                    }
                }
                order = scrambled;
            }
        }

        let mut interval_of = vec![0u32; rows as usize];
        for (pos, row) in order.iter().enumerate() {
            interval_of[row.index()] = u32::try_from(pos).expect("row position fits u32") / rpi;
        }

        RefreshSchedule {
            order,
            interval_of,
            rows_per_interval: rpi,
        }
    }

    /// Rows refreshed by interval `interval` (within the window).
    ///
    /// # Panics
    ///
    /// Panics if `interval` ≥ intervals per window.
    pub fn rows_for_interval(&self, interval: u32) -> &[RowAddr] {
        let rpi = self.rows_per_interval as usize;
        let start = interval as usize * rpi;
        &self.order[start..start + rpi]
    }

    /// The interval (within the window) that refreshes `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn interval_of(&self, row: RowAddr) -> u32 {
        self.interval_of[row.index()]
    }

    /// Total number of intervals in the schedule.
    pub fn intervals(&self) -> u32 {
        u32::try_from(self.order.len() / self.rows_per_interval as usize)
            .expect("interval count fits u32")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> Geometry {
        Geometry::new(64, 1, 8).unwrap()
    }

    fn is_permutation(s: &RefreshSchedule, rows: u32) -> bool {
        let mut seen = vec![false; rows as usize];
        for i in 0..s.intervals() {
            for &r in s.rows_for_interval(i) {
                if seen[r.index()] {
                    return false;
                }
                seen[r.index()] = true;
            }
        }
        seen.iter().all(|&b| b)
    }

    #[test]
    fn sequential_matches_paper_mapping() {
        let g = geometry();
        let s = RefreshSchedule::new(&g, &RefreshOrder::SequentialNeighbors);
        for r in 0..g.rows_per_bank() {
            assert_eq!(s.interval_of(RowAddr(r)), g.home_interval(RowAddr(r)));
        }
    }

    #[test]
    fn every_policy_refreshes_every_row_once() {
        let g = geometry();
        let policies = [
            RefreshOrder::SequentialNeighbors,
            RefreshOrder::SequentialWithReplacements {
                replacements: vec![(RowAddr(3), RowAddr(40)), (RowAddr(17), RowAddr(55))],
            },
            RefreshOrder::FullyRandom { seed: 7 },
            RefreshOrder::CounterMask { mask: 0b101 },
        ];
        for p in &policies {
            let s = RefreshSchedule::new(&g, p);
            assert!(is_permutation(&s, g.rows_per_bank()), "policy {p}");
        }
    }

    #[test]
    fn replacements_swap_refresh_slots() {
        let g = geometry();
        let s = RefreshSchedule::new(
            &g,
            &RefreshOrder::SequentialWithReplacements {
                replacements: vec![(RowAddr(0), RowAddr(63))],
            },
        );
        // Row 0 now occupies row 63's old slot (last interval) and vice versa.
        assert_eq!(s.interval_of(RowAddr(0)), 7);
        assert_eq!(s.interval_of(RowAddr(63)), 0);
        // Everything else is untouched.
        assert_eq!(s.interval_of(RowAddr(9)), 1);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let g = geometry();
        let a = RefreshSchedule::new(&g, &RefreshOrder::FullyRandom { seed: 1 });
        let b = RefreshSchedule::new(&g, &RefreshOrder::FullyRandom { seed: 1 });
        let c = RefreshSchedule::new(&g, &RefreshOrder::FullyRandom { seed: 2 });
        assert_eq!(a.order, b.order);
        assert_ne!(a.order, c.order);
    }

    #[test]
    fn counter_mask_keeps_groups_contiguous() {
        let g = geometry();
        let s = RefreshSchedule::new(&g, &RefreshOrder::CounterMask { mask: 3 });
        // Within one interval the rows are still a contiguous RowsPI group
        // (the mask permutes *groups*, not individual rows).
        for i in 0..s.intervals() {
            let rows = s.rows_for_interval(i);
            let base = rows[0].0;
            assert_eq!(base % g.rows_per_interval(), 0);
            for (k, r) in rows.iter().enumerate() {
                assert_eq!(r.0, base + k as u32);
            }
        }
    }

    #[test]
    fn display_names_all_policies() {
        assert!(RefreshOrder::SequentialNeighbors
            .to_string()
            .contains("sequential"));
        assert!(RefreshOrder::FullyRandom { seed: 3 }
            .to_string()
            .contains("random"));
        assert!(RefreshOrder::CounterMask { mask: 1 }
            .to_string()
            .contains("mask"));
        let r = RefreshOrder::SequentialWithReplacements {
            replacements: vec![(RowAddr(1), RowAddr(2))],
        };
        assert!(r.to_string().contains("replacements"));
    }
}
