//! Device geometry: banks, rows, and the refresh-window structure.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Structural parameters of the simulated DRAM device.
///
/// A refresh *window* (64 ms for DDR4) consists of `intervals_per_window`
/// refresh *intervals* (`RefInt` in the paper, 8192 for DDR4); each
/// interval refreshes `rows_per_interval` (`RowsPI`) rows, so that every
/// row is refreshed exactly once per window.
///
/// The paper's reference geometry ([`Geometry::paper`]) uses 65 536 rows
/// per bank, 8192 intervals and therefore `RowsPI = 8` — exactly the
/// worked example in §III ("if RowsPI = 8 then the first refresh interval
/// refreshes rows 0−7, the second interval refreshes rows 8−15, etc.").
///
/// ```
/// use dram_sim::Geometry;
/// let g = Geometry::paper();
/// assert_eq!(g.rows_per_interval(), 8);
/// assert_eq!(g.intervals_per_window(), 8192);
/// // Row→interval mapping f_r = r / RowsPI:
/// assert_eq!(g.home_interval(dram_sim::RowAddr(17)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    rows_per_bank: u32,
    banks: u32,
    intervals_per_window: u32,
}

impl Geometry {
    /// Creates a geometry, validating that every interval refreshes the
    /// same number of rows.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroParameter`] if any argument is zero and
    /// [`ConfigError::RowsNotDivisible`] if `rows_per_bank` is not a
    /// multiple of `intervals_per_window`.
    ///
    /// ```
    /// use dram_sim::Geometry;
    /// # fn main() -> Result<(), dram_sim::ConfigError> {
    /// let g = Geometry::new(1024, 4, 128)?;
    /// assert_eq!(g.rows_per_interval(), 8);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(
        rows_per_bank: u32,
        banks: u32,
        intervals_per_window: u32,
    ) -> Result<Self, ConfigError> {
        if rows_per_bank == 0 {
            return Err(ConfigError::ZeroParameter {
                name: "rows_per_bank",
            });
        }
        if banks == 0 {
            return Err(ConfigError::ZeroParameter { name: "banks" });
        }
        if intervals_per_window == 0 {
            return Err(ConfigError::ZeroParameter {
                name: "intervals_per_window",
            });
        }
        if !rows_per_bank.is_multiple_of(intervals_per_window) {
            return Err(ConfigError::RowsNotDivisible {
                rows_per_bank,
                intervals_per_window,
            });
        }
        Ok(Geometry {
            rows_per_bank,
            banks,
            intervals_per_window,
        })
    }

    /// The paper's simulated DDR4 geometry: 65 536 rows per 1 GB bank,
    /// 4 banks under attack, 8192 refresh intervals per 64 ms window.
    pub fn paper() -> Self {
        Geometry {
            rows_per_bank: 65_536,
            banks: 4,
            intervals_per_window: 8192,
        }
    }

    /// A reduced geometry for fast tests and examples that preserves the
    /// paper's `RowsPI = 8` ratio.
    ///
    /// `scale` divides both the row count and the interval count; scale 1
    /// reproduces [`Geometry::paper`] with a single bank.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero or larger than 8192.
    pub fn scaled_down(scale: u32) -> Self {
        assert!(scale > 0 && scale <= 8192, "scale must be in 1..=8192");
        Geometry {
            rows_per_bank: 65_536 / scale,
            banks: 1,
            intervals_per_window: 8192 / scale,
        }
    }

    /// Number of rows in every bank (`RowsPB`).
    #[inline]
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Number of independently attackable banks.
    #[inline]
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Number of refresh intervals per refresh window (`RefInt`).
    #[inline]
    pub fn intervals_per_window(&self) -> u32 {
        self.intervals_per_window
    }

    /// Number of rows refreshed by each interval (`RowsPI`).
    #[inline]
    pub fn rows_per_interval(&self) -> u32 {
        self.rows_per_bank / self.intervals_per_window
    }

    /// Returns a copy with a different bank count.
    ///
    /// ```
    /// use dram_sim::Geometry;
    /// let g = Geometry::paper().with_banks(1);
    /// assert_eq!(g.banks(), 1);
    /// ```
    pub fn with_banks(mut self, banks: u32) -> Self {
        assert!(banks > 0, "banks must be nonzero");
        self.banks = banks;
        self
    }

    /// The refresh interval in which row `r` is refreshed under the
    /// paper's sequential-neighbors assumption: `f_r = r / RowsPI`.
    ///
    /// This is the quantity the TiVaPRoMi weight equation (Eq. 1) is
    /// built on; with `RowsPI` a power of two it is a simple right shift
    /// in hardware.
    #[inline]
    pub fn home_interval(&self, row: crate::RowAddr) -> u32 {
        row.0 / self.rows_per_interval()
    }

    /// Validates a row address against this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::RowOutOfRange`] when the row does not exist.
    pub fn check_row(&self, row: crate::RowAddr) -> Result<(), ConfigError> {
        if row.0 < self.rows_per_bank {
            Ok(())
        } else {
            Err(ConfigError::RowOutOfRange {
                row: row.0,
                rows_per_bank: self.rows_per_bank,
            })
        }
    }

    /// Validates a bank id against this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BankOutOfRange`] when the bank does not exist.
    pub fn check_bank(&self, bank: crate::BankId) -> Result<(), ConfigError> {
        if bank.0 < self.banks {
            Ok(())
        } else {
            Err(ConfigError::BankOutOfRange {
                bank: bank.0,
                banks: self.banks,
            })
        }
    }
}

impl Default for Geometry {
    /// Defaults to the paper geometry.
    fn default() -> Self {
        Geometry::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowAddr;

    #[test]
    fn paper_geometry_matches_table_i() {
        let g = Geometry::paper();
        assert_eq!(g.intervals_per_window(), 8192);
        assert_eq!(g.rows_per_interval(), 8);
        assert_eq!(g.rows_per_bank(), 65_536);
    }

    #[test]
    fn home_interval_follows_paper_example() {
        // "the first refresh interval refreshes rows 0−7, the second
        // interval refreshes rows 8−15"
        let g = Geometry::paper();
        assert_eq!(g.home_interval(RowAddr(0)), 0);
        assert_eq!(g.home_interval(RowAddr(7)), 0);
        assert_eq!(g.home_interval(RowAddr(8)), 1);
        assert_eq!(g.home_interval(RowAddr(15)), 1);
        assert_eq!(g.home_interval(RowAddr(65_535)), 8191);
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(Geometry::new(0, 1, 1).is_err());
        assert!(Geometry::new(8, 0, 1).is_err());
        assert!(Geometry::new(8, 1, 0).is_err());
    }

    #[test]
    fn rejects_nondivisible_rows() {
        assert_eq!(
            Geometry::new(10, 1, 4),
            Err(ConfigError::RowsNotDivisible {
                rows_per_bank: 10,
                intervals_per_window: 4
            })
        );
    }

    #[test]
    fn scaled_down_preserves_rows_per_interval() {
        for scale in [1, 2, 4, 16, 64, 256] {
            let g = Geometry::scaled_down(scale);
            assert_eq!(g.rows_per_interval(), 8, "scale {scale}");
        }
    }

    #[test]
    fn check_row_and_bank_bounds() {
        let g = Geometry::new(64, 2, 8).unwrap();
        assert!(g.check_row(RowAddr(63)).is_ok());
        assert!(g.check_row(RowAddr(64)).is_err());
        assert!(g.check_bank(crate::BankId(1)).is_ok());
        assert!(g.check_bank(crate::BankId(2)).is_err());
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn scaled_down_rejects_zero() {
        let _ = Geometry::scaled_down(0);
    }
}
