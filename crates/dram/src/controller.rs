//! A cycle-level memory-controller model — the integration point of
//! Fig. 1.
//!
//! The paper's mitigations live *next to* the controller: they observe
//! `act`/`ref`, and when they want an extra activation they raise
//! `IRQ_RH`, which the controller buffers while `wait` is high and
//! arbitrates against demand traffic.  The activation-count overhead of
//! Fig. 4 only becomes a *performance* cost through this arbitration:
//! every mitigation activation occupies a bank for `tRC` and delays
//! queued demand requests.  This model makes that cost measurable.
//!
//! Scope: a single-channel FCFS controller with per-bank state machines
//! honoring `tRC` (activate-to-activate, same bank), `tRFC` (refresh)
//! and `tREFI` (refresh cadence), a closed-page policy (every request is
//! an activation — the stream the row-hammer model cares about), and a
//! mitigation queue with lower priority than refresh but configurable
//! priority against demand reads.

use crate::{BankId, DramTiming, Geometry, RowAddr};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Arbitration priority of buffered mitigation activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationPriority {
    /// Mitigation activations yield to demand requests (issued only on
    /// idle bank cycles) — the Fig. 1 buffer-and-wait behaviour.
    Background,
    /// Mitigation activations are issued ahead of demand requests —
    /// bounded staleness, higher demand latency.
    Urgent,
}

/// Controller configuration, derived from a [`DramTiming`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Activate-to-activate time per bank, in controller cycles (tRC).
    pub t_rc: u64,
    /// Refresh execution time, in cycles (tRFC) — all banks blocked.
    pub t_rfc: u64,
    /// Refresh cadence, in cycles (tREFI).
    pub t_refi: u64,
    /// Mitigation arbitration priority.
    pub priority: MitigationPriority,
}

impl ControllerConfig {
    /// Derives cycle counts from a timing set (DDR4: tRC 54, tRFC 420,
    /// tREFI 9360 cycles at 1.2 GHz).
    // Cycle counts derived from ns-scale timings are small positive
    // integers; the rounded float always fits u64.
    #[allow(clippy::cast_possible_truncation)]
    pub fn from_timing(timing: &DramTiming) -> Self {
        let cycles_per_ns = timing.frequency_ghz;
        ControllerConfig {
            t_rc: (timing.act_to_act_ns * cycles_per_ns).round() as u64,
            t_rfc: (timing.refresh_time_ns * cycles_per_ns).round() as u64,
            t_refi: (timing.refresh_interval_us * 1000.0 * cycles_per_ns).round() as u64,
            priority: MitigationPriority::Background,
        }
    }

    /// Returns a copy with the given mitigation priority.
    pub fn with_priority(mut self, priority: MitigationPriority) -> Self {
        self.priority = priority;
        self
    }
}

/// A demand memory request (one activation under the closed-page
/// policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Target bank.
    pub bank: BankId,
    /// Target row.
    pub row: RowAddr,
    /// Cycle the request entered the controller queue.
    pub arrival_cycle: u64,
}

/// Latency statistics of completed demand requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Completed demand requests.
    pub completed: u64,
    /// Sum of queueing+service latencies, in cycles.
    pub total_latency_cycles: u64,
    /// Worst single-request latency, in cycles.
    pub max_latency_cycles: u64,
    /// Mitigation activations issued.
    pub mitigation_activations: u64,
    /// Refreshes issued.
    pub refreshes: u64,
    /// Cycles any demand request was stalled behind a mitigation
    /// activation occupying its bank.
    pub mitigation_stall_cycles: u64,
}

impl LatencyStats {
    /// Mean demand latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.completed as f64
        }
    }
}

/// Per-bank availability tracking.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// First cycle the bank can accept another activation.
    ready_at: u64,
    /// If the bank is currently busy on a mitigation activation, when it
    /// started (for stall attribution).
    busy_on_mitigation_until: u64,
}

/// The single-channel FCFS controller.
///
/// ```
/// use dram_sim::controller::{ControllerConfig, MemoryController, Request};
/// use dram_sim::{BankId, DramTiming, Geometry, RowAddr};
///
/// let config = ControllerConfig::from_timing(&DramTiming::ddr4());
/// let mut mc = MemoryController::new(Geometry::paper(), config);
/// mc.enqueue_demand(Request { bank: BankId(0), row: RowAddr(5), arrival_cycle: 0 });
/// mc.run_until(1000);
/// assert_eq!(mc.stats().completed, 1);
/// ```
#[derive(Debug)]
pub struct MemoryController {
    config: ControllerConfig,
    banks: Vec<BankState>,
    demand: VecDeque<Request>,
    /// Buffered `act_n` requests from the mitigation (Fig. 1's
    /// TiVaPRoMi buffer): each entry is one neighbor activation.
    mitigation: VecDeque<(BankId, RowAddr)>,
    cycle: u64,
    next_refresh: u64,
    stats: LatencyStats,
    /// Completed activations in issue order (bank, row, cycle) for
    /// co-simulation with the disturbance model.
    issued: Vec<(BankId, RowAddr, u64)>,
    record_issued: bool,
}

impl MemoryController {
    /// Creates an idle controller.
    pub fn new(geometry: Geometry, config: ControllerConfig) -> Self {
        MemoryController {
            banks: vec![BankState::default(); geometry.banks() as usize],
            demand: VecDeque::new(),
            mitigation: VecDeque::new(),
            cycle: 0,
            next_refresh: config.t_refi,
            config,
            stats: LatencyStats::default(),
            issued: Vec::new(),
            record_issued: false,
        }
    }

    /// Enables recording of every issued activation (for co-simulation;
    /// costs memory proportional to the run length).
    pub fn record_issued(&mut self, enable: bool) {
        self.record_issued = enable;
    }

    /// Queues a demand request.  `arrival_cycle` may be in the future;
    /// the request is not visible to arbitration before it.
    pub fn enqueue_demand(&mut self, request: Request) {
        self.demand.push_back(request);
    }

    /// Queues one mitigation activation (one neighbor of an `act_n`).
    pub fn enqueue_mitigation(&mut self, bank: BankId, row: RowAddr) {
        self.mitigation.push_back((bank, row));
    }

    /// Number of queued (not yet issued) mitigation activations.
    pub fn mitigation_backlog(&self) -> usize {
        self.mitigation.len()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LatencyStats {
        self.stats
    }

    /// Issued activations, if recording was enabled.
    pub fn issued(&self) -> &[(BankId, RowAddr, u64)] {
        &self.issued
    }

    fn issue_refresh(&mut self) {
        // All banks are blocked for tRFC.
        let until = self.cycle + self.config.t_rfc;
        for bank in &mut self.banks {
            bank.ready_at = bank.ready_at.max(until);
        }
        self.stats.refreshes += 1;
        self.next_refresh += self.config.t_refi;
    }

    fn try_issue_mitigation(&mut self) -> bool {
        if let Some(&(bank, row)) = self.mitigation.front() {
            let state = &mut self.banks[bank.index()];
            if state.ready_at <= self.cycle {
                state.ready_at = self.cycle + self.config.t_rc;
                state.busy_on_mitigation_until = state.ready_at;
                self.stats.mitigation_activations += 1;
                if self.record_issued {
                    self.issued.push((bank, row, self.cycle));
                }
                self.mitigation.pop_front();
                return true;
            }
        }
        false
    }

    fn try_issue_demand(&mut self) -> bool {
        // First-ready, first-come-first-served (FR-FCFS style): the
        // oldest request whose bank is free issues; a blocked head does
        // not stall independent banks.  The scan window bounds the
        // scheduler's associativity like a real command queue.
        const SCHEDULER_WINDOW: usize = 16;
        let mut head_stalled_on_mitigation = false;
        let mut pick: Option<usize> = None;
        for (i, request) in self.demand.iter().take(SCHEDULER_WINDOW).enumerate() {
            if request.arrival_cycle > self.cycle {
                // Arrivals are FCFS-ordered: nothing later is here yet.
                break;
            }
            let state = &self.banks[request.bank.index()];
            if state.ready_at <= self.cycle {
                pick = Some(i);
                break;
            }
            if i == 0 && state.busy_on_mitigation_until > self.cycle {
                head_stalled_on_mitigation = true;
            }
        }
        if let Some(i) = pick {
            let request = self.demand.remove(i).expect("picked index is valid");
            let state = &mut self.banks[request.bank.index()];
            state.ready_at = self.cycle + self.config.t_rc;
            // Latency: from arrival to the end of the activation.
            let latency = self.cycle + self.config.t_rc - request.arrival_cycle;
            self.stats.completed += 1;
            self.stats.total_latency_cycles += latency;
            self.stats.max_latency_cycles = self.stats.max_latency_cycles.max(latency);
            if self.record_issued {
                self.issued.push((request.bank, request.row, self.cycle));
            }
            return true;
        }
        if head_stalled_on_mitigation {
            self.stats.mitigation_stall_cycles += 1;
        }
        false
    }

    /// Advances one cycle: refresh first (mandatory cadence), then the
    /// configured arbitration between mitigation and demand.
    pub fn step(&mut self) {
        if self.cycle >= self.next_refresh {
            self.issue_refresh();
        }
        match self.config.priority {
            MitigationPriority::Urgent => {
                if !self.try_issue_mitigation() {
                    self.try_issue_demand();
                }
            }
            MitigationPriority::Background => {
                if !self.try_issue_demand() {
                    self.try_issue_mitigation();
                }
            }
        }
        self.cycle += 1;
    }

    /// Runs until `cycle` (exclusive).
    pub fn run_until(&mut self, cycle: u64) {
        while self.cycle < cycle {
            self.step();
        }
    }

    /// Runs until both queues are drained (and at least to `min_cycle`).
    pub fn drain(&mut self, min_cycle: u64) {
        while self.cycle < min_cycle || !self.demand.is_empty() || !self.mitigation.is_empty() {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> MemoryController {
        let config = ControllerConfig::from_timing(&DramTiming::ddr4());
        MemoryController::new(Geometry::paper().with_banks(4), config)
    }

    #[test]
    fn config_from_ddr4_timing() {
        let c = ControllerConfig::from_timing(&DramTiming::ddr4());
        assert_eq!(c.t_rc, 54);
        assert_eq!(c.t_rfc, 420);
        assert_eq!(c.t_refi, 9360);
    }

    #[test]
    fn single_request_completes_in_t_rc() {
        let mut mc = controller();
        mc.enqueue_demand(Request {
            bank: BankId(0),
            row: RowAddr(1),
            arrival_cycle: 0,
        });
        mc.drain(0);
        let s = mc.stats();
        assert_eq!(s.completed, 1);
        assert_eq!(s.total_latency_cycles, 54);
    }

    #[test]
    fn same_bank_requests_serialize_at_t_rc() {
        let mut mc = controller();
        for _ in 0..3 {
            mc.enqueue_demand(Request {
                bank: BankId(0),
                row: RowAddr(1),
                arrival_cycle: 0,
            });
        }
        mc.drain(0);
        let s = mc.stats();
        assert_eq!(s.completed, 3);
        // Completions at 54, 108, 162 → latencies 54 + 108 + 162.
        assert_eq!(s.total_latency_cycles, 54 + 108 + 162);
        assert_eq!(s.max_latency_cycles, 162);
    }

    #[test]
    fn refresh_blocks_all_banks() {
        let mut mc = controller();
        // Arrive exactly at the refresh cadence.
        mc.enqueue_demand(Request {
            bank: BankId(1),
            row: RowAddr(1),
            arrival_cycle: 9360,
        });
        mc.drain(0);
        let s = mc.stats();
        assert_eq!(s.refreshes, 1);
        // The request waits out tRFC: latency = 420 + 54 (approximately;
        // the refresh issues at cycle 9360, bank free at 9780).
        assert_eq!(s.total_latency_cycles, 420 + 54);
    }

    #[test]
    fn background_mitigation_yields_to_demand() {
        let config = ControllerConfig::from_timing(&DramTiming::ddr4());
        let mut mc = MemoryController::new(Geometry::paper().with_banks(4), config);
        mc.enqueue_mitigation(BankId(0), RowAddr(9));
        mc.enqueue_demand(Request {
            bank: BankId(0),
            row: RowAddr(1),
            arrival_cycle: 0,
        });
        mc.drain(0);
        let s = mc.stats();
        // Demand went first: latency exactly tRC.
        assert_eq!(s.total_latency_cycles, 54);
        assert_eq!(s.mitigation_activations, 1);
    }

    #[test]
    fn urgent_mitigation_delays_demand() {
        let config = ControllerConfig::from_timing(&DramTiming::ddr4())
            .with_priority(MitigationPriority::Urgent);
        let mut mc = MemoryController::new(Geometry::paper().with_banks(4), config);
        mc.enqueue_mitigation(BankId(0), RowAddr(9));
        mc.enqueue_demand(Request {
            bank: BankId(0),
            row: RowAddr(1),
            arrival_cycle: 0,
        });
        mc.drain(0);
        let s = mc.stats();
        // Demand waited for the mitigation activation: 54 + 54.
        assert_eq!(s.total_latency_cycles, 108);
        assert!(s.mitigation_stall_cycles > 0);
    }

    #[test]
    fn different_banks_proceed_back_to_back() {
        let mut mc = controller();
        mc.enqueue_demand(Request {
            bank: BankId(0),
            row: RowAddr(1),
            arrival_cycle: 0,
        });
        mc.enqueue_demand(Request {
            bank: BankId(1),
            row: RowAddr(1),
            arrival_cycle: 0,
        });
        mc.drain(0);
        let s = mc.stats();
        // Second request issues one cycle later (command bus), not tRC.
        assert_eq!(s.total_latency_cycles, 54 + 55);
    }

    #[test]
    fn issued_recording_captures_order() {
        let mut mc = controller();
        mc.record_issued(true);
        mc.enqueue_mitigation(BankId(2), RowAddr(7));
        mc.enqueue_demand(Request {
            bank: BankId(0),
            row: RowAddr(1),
            arrival_cycle: 0,
        });
        mc.drain(0);
        let issued = mc.issued();
        assert_eq!(issued.len(), 2);
        assert_eq!(issued[0].0, BankId(0)); // demand first (background prio)
        assert_eq!(issued[1].0, BankId(2));
    }

    #[test]
    fn backlog_reports_pending_mitigations() {
        let mut mc = controller();
        mc.enqueue_mitigation(BankId(0), RowAddr(1));
        mc.enqueue_mitigation(BankId(0), RowAddr(3));
        assert_eq!(mc.mitigation_backlog(), 2);
        mc.drain(0);
        assert_eq!(mc.mitigation_backlog(), 0);
    }
}
