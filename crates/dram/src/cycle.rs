//! The cycle tier: row-buffer state and per-command cycle costs on top
//! of the exact model.
//!
//! [`CycleBackend`] wraps a [`DramDevice`] — every disturbance-visible
//! result (flips, activity statistics, the disturbance high-water mark)
//! is the exact model's, by construction.  What the tier *adds* is a
//! price tag: per bank it tracks the open row, and per command it
//! charges cycles from the device timing's [`CycleBudget`]:
//!
//! * a workload activation that **hits** the open row costs a column
//!   access, approximated as `act_cycles / 3` (tRC covers
//!   activate-restore-precharge; a CAS-only access rides the open row);
//! * a **miss** costs the full `act_cycles` (tRC) and re-opens the row;
//! * a mitigation command (`act_n` neighbor activation, victim refresh)
//!   costs `act_cycles` per physical activation and *closes* the open
//!   row — the conservative choice, since a mitigation activate evicts
//!   whatever the workload had open;
//! * the end-of-interval auto-refresh costs `ref_cycles` (tRFC).
//!
//! The accounting lands in [`CycleStats`], per-bank-additive except the
//! per-interval refresh cost (see [`CycleStats::merge`]), so
//! bank-sharded runs stay byte-identical to sequential ones.

use crate::backend::{CycleStats, DisturbanceBackend};
use crate::timing::CycleBudget;
use crate::{Command, DeviceStats, DramDevice, FlipEvent, RowAddr};

/// The row-buffer + command-timing backend (`--backend cycle`).
#[derive(Debug)]
pub struct CycleBackend {
    inner: DramDevice,
    /// Open row per bank (logical address; `None` after refresh or a
    /// mitigation command).
    open_row: Vec<Option<RowAddr>>,
    budget: CycleBudget,
    /// Cost of a row-buffer hit: `act_cycles / 3`, at least 1.
    hit_cycles: u32,
    cycles: CycleStats,
}

impl CycleBackend {
    /// Wraps an exact device; the cycle budget derives from its timing.
    pub fn new(inner: DramDevice) -> Self {
        let budget = inner.timing().cycle_budget();
        let banks = inner.geometry().banks() as usize;
        CycleBackend {
            inner,
            open_row: vec![None; banks],
            hit_cycles: (budget.act_cycles / 3).max(1),
            budget,
            cycles: CycleStats::default(),
        }
    }

    /// The wrapped event-accurate device.
    pub fn inner(&self) -> &DramDevice {
        &self.inner
    }

    /// The cycle accounting so far.
    pub fn cycles(&self) -> CycleStats {
        self.cycles
    }
}

impl DisturbanceBackend for CycleBackend {
    fn apply(&mut self, command: Command) {
        match command {
            Command::Activate { bank, row } => {
                if self.open_row[bank.index()] == Some(row) {
                    self.cycles.row_buffer_hits += 1;
                    self.cycles.workload_cycles += u64::from(self.hit_cycles);
                } else {
                    self.cycles.row_buffer_misses += 1;
                    self.cycles.workload_cycles += u64::from(self.budget.act_cycles);
                    self.open_row[bank.index()] = Some(row);
                }
                self.inner.apply(command);
            }
            Command::Refresh => {
                self.inner.apply(command);
                self.cycles.refresh_cycles += u64::from(self.budget.ref_cycles);
                for slot in &mut self.open_row {
                    *slot = None;
                }
            }
            Command::ActivateNeighbors { bank, .. } => {
                // Mitigation fan-out varies (edge rows have one
                // neighbor): price the activations the device actually
                // issued, via the stats delta.
                let before = self.inner.stats().mitigation_activations;
                self.inner.apply(command);
                let issued = self.inner.stats().mitigation_activations - before;
                self.cycles.mitigation_cycles += issued * u64::from(self.budget.act_cycles);
                self.open_row[bank.index()] = None;
            }
            Command::RefreshRow { bank, .. } => {
                self.inner.apply(command);
                self.cycles.mitigation_cycles += u64::from(self.budget.act_cycles);
                self.open_row[bank.index()] = None;
            }
        }
    }

    fn flips(&self) -> &[FlipEvent] {
        self.inner.flips()
    }

    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }

    fn max_disturbance_seen(&self) -> u32 {
        self.inner.max_disturbance_seen()
    }

    fn device(&self) -> Option<&DramDevice> {
        Some(&self.inner)
    }

    fn cycle_stats(&self) -> Option<CycleStats> {
        Some(self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BankId, Geometry};

    fn backend() -> CycleBackend {
        let mut device = DramDevice::new(Geometry::new(64, 2, 8).expect("geometry"));
        device.set_flip_threshold(10);
        CycleBackend::new(device)
    }

    fn act(bank: u32, row: u32) -> Command {
        Command::Activate {
            bank: BankId(bank),
            row: RowAddr(row),
        }
    }

    #[test]
    fn repeat_activations_hit_the_row_buffer() {
        let mut b = backend();
        b.apply(act(0, 5)); // miss: opens the row
        b.apply(act(0, 5)); // hit
        b.apply(act(0, 5)); // hit
        b.apply(act(0, 7)); // miss: conflict
        let c = b.cycles();
        assert_eq!(c.row_buffer_hits, 2);
        assert_eq!(c.row_buffer_misses, 2);
        let act_cost = u64::from(b.budget.act_cycles);
        let hit_cost = u64::from(b.hit_cycles);
        assert_eq!(c.workload_cycles, 2 * act_cost + 2 * hit_cost);
        assert!((c.row_buffer_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn banks_track_open_rows_independently() {
        let mut b = backend();
        b.apply(act(0, 5));
        b.apply(act(1, 5)); // different bank: its own miss
        b.apply(act(0, 5)); // still open in bank 0
        let c = b.cycles();
        assert_eq!(c.row_buffer_hits, 1);
        assert_eq!(c.row_buffer_misses, 2);
    }

    #[test]
    fn mitigation_commands_are_priced_and_close_the_row() {
        let mut b = backend();
        b.apply(act(0, 5));
        b.apply(Command::ActivateNeighbors {
            bank: BankId(0),
            row: RowAddr(5),
        });
        let act_cost = u64::from(b.budget.act_cycles);
        // Interior row: two neighbors activated, two activations priced.
        assert_eq!(b.cycles().mitigation_cycles, 2 * act_cost);
        assert_eq!(b.stats().mitigation_activations, 2);
        b.apply(act(0, 5)); // mitigation closed the row: miss again
        assert_eq!(b.cycles().row_buffer_misses, 2);
        assert!(b.cycles().bandwidth_overhead_percent() > 0.0);
    }

    #[test]
    fn edge_row_mitigation_prices_single_neighbor() {
        let mut b = backend();
        b.apply(Command::ActivateNeighbors {
            bank: BankId(0),
            row: RowAddr(0),
        });
        assert_eq!(b.stats().mitigation_activations, 1);
        assert_eq!(b.cycles().mitigation_cycles, u64::from(b.budget.act_cycles));
    }

    #[test]
    fn refresh_costs_trfc_and_flushes_row_buffers() {
        let mut b = backend();
        b.apply(act(0, 5));
        b.apply(Command::Refresh);
        assert_eq!(b.cycles().refresh_cycles, u64::from(b.budget.ref_cycles));
        b.apply(act(0, 5)); // refresh closed it: miss
        assert_eq!(b.cycles().row_buffer_misses, 2);
    }

    #[test]
    fn disturbance_results_are_the_exact_models() {
        let mut cycle = backend();
        let mut exact = DramDevice::new(Geometry::new(64, 2, 8).expect("geometry"));
        exact.set_flip_threshold(10);
        for _ in 0..12 {
            cycle.apply(act(0, 5));
            exact.apply(act(0, 5));
        }
        cycle.apply(Command::Refresh);
        exact.apply(Command::Refresh);
        assert_eq!(cycle.flips(), exact.flips());
        assert_eq!(cycle.stats(), exact.stats());
        assert_eq!(cycle.max_disturbance_seen(), exact.max_disturbance_seen());
        assert!(cycle.device().is_some());
        assert!(cycle.cycle_stats().is_some());
    }
}
