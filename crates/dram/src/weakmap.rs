//! Heterogeneous weak-cell maps: per-row flip thresholds and weak-cell
//! columns.
//!
//! Real DRAM devices do not have one flip threshold — retention and
//! disturbance sensitivity vary cell to cell, and a profiling-equipped
//! attacker exploits exactly that variation.  [`WeakCellMap`] is the
//! ground truth of one device: for every `(bank, row)` it records the
//! row's flip threshold (whole activations) and the column of the
//! row's weakest cell — the bit that flips when the row's disturbance
//! counter crosses the threshold.
//!
//! Maps are never stored in configs or campaign specs; the serializable
//! [`WeakCellSpec`] is, and [`WeakCellSpec::materialize`] regenerates
//! the identical map from the spec on every shard (the per-bank RNG is
//! seeded by [`bank_seed`], so worker count and bank order cannot
//! change a single cell).

use crate::{bank_seed, BankId, Geometry, RowAddr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Columns modeled per row.  [`Geometry`] has no column dimension — the
/// disturbance model is row-granular — so the weak-cell model fixes the
/// row width here (1 KiB rows, one weak bit per row).
pub const WEAK_CELL_COLUMNS: u32 = 1024;

/// Ground-truth weak-cell map of one device: a flip threshold and a
/// weak-cell column for every `(bank, row)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeakCellMap {
    rows_per_bank: u32,
    base_threshold: u32,
    /// Bank-major `banks × rows_per_bank` thresholds, whole activations.
    thresholds: Vec<u32>,
    /// Bank-major weak-cell column per row, `< WEAK_CELL_COLUMNS`.
    columns: Vec<u32>,
}

impl WeakCellMap {
    fn index(&self, bank: BankId, row: RowAddr) -> usize {
        bank.index() * self.rows_per_bank as usize + row.index()
    }

    /// Number of banks covered.
    pub fn banks(&self) -> u32 {
        u32::try_from(self.thresholds.len() / self.rows_per_bank as usize)
            .expect("bank count fits u32")
    }

    /// Rows per bank covered.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// The uniform threshold the map's weak rows deviate from.
    pub fn base_threshold(&self) -> u32 {
        self.base_threshold
    }

    /// Flip threshold of `(bank, row)` in whole activations.
    pub fn threshold(&self, bank: BankId, row: RowAddr) -> u32 {
        self.thresholds[self.index(bank, row)]
    }

    /// Column of the row's weakest cell — the bit that corrupts when
    /// the row flips.
    pub fn column(&self, bank: BankId, row: RowAddr) -> u32 {
        self.columns[self.index(bank, row)]
    }

    /// Whether the row's threshold is below the map's base threshold.
    pub fn is_weak(&self, bank: BankId, row: RowAddr) -> bool {
        self.threshold(bank, row) < self.base_threshold
    }

    /// All weak rows of `bank`, in row order.
    pub fn weak_rows(&self, bank: BankId) -> Vec<RowAddr> {
        (0..self.rows_per_bank)
            .map(RowAddr)
            .filter(|&row| self.is_weak(bank, row))
            .collect()
    }

    /// The per-row threshold vector of `bank`, ready for
    /// [`crate::DisturbState::set_row_thresholds`].
    pub fn bank_thresholds(&self, bank: BankId) -> Vec<u32> {
        let start = bank.index() * self.rows_per_bank as usize;
        self.thresholds[start..start + self.rows_per_bank as usize].to_vec()
    }
}

/// Serializable recipe for a device's weak-cell population.  Campaign
/// specs and run configs carry the spec; every shard rebuilds the same
/// [`WeakCellMap`] from it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WeakCellSpec {
    /// The legacy model: one global threshold (`RunConfig::flip_threshold`),
    /// no per-row state installed.  The default everywhere, so every
    /// pre-weak-map config keeps meaning exactly what it meant.
    #[default]
    Uniform,
    /// Every row shares `threshold`, but through the per-row path —
    /// behaviourally identical to `Uniform` at the same threshold, used
    /// to pin that equivalence and to give uniform devices weak-cell
    /// columns.
    Flat {
        /// Flip threshold of every row, whole activations.
        threshold: u32,
    },
    /// The heterogeneous model: most rows flip at `strong`; about
    /// `weak_per_mille`‰ of rows are weak and flip somewhere in
    /// `weak_lo..=weak_hi`, sampled per bank from `seed`.
    Sampled {
        /// Base seed; each bank derives its stream via [`bank_seed`].
        seed: u64,
        /// Threshold of the strong (ordinary) rows.
        strong: u32,
        /// Lowest weak-row threshold (inclusive).
        weak_lo: u32,
        /// Highest weak-row threshold (inclusive).
        weak_hi: u32,
        /// Weak rows per thousand.
        weak_per_mille: u32,
    },
}

impl WeakCellSpec {
    /// The spec's stable name (the JSON tag for payload variants).
    pub fn name(&self) -> &'static str {
        match self {
            WeakCellSpec::Uniform => "uniform",
            WeakCellSpec::Flat { .. } => "flat",
            WeakCellSpec::Sampled { .. } => "sampled",
        }
    }

    /// Builds the ground-truth map for `geometry`.  `Uniform` returns
    /// `None` (no per-row state; the uniform threshold applies).
    ///
    /// Deterministic per `(spec, geometry)`: each bank's cells come
    /// from its own [`bank_seed`]-derived RNG in fixed row order
    /// (column first, then the weakness roll, then the weak threshold),
    /// so sharded and sequential runs see the identical device.
    ///
    /// # Panics
    ///
    /// Panics if a `Sampled` spec has `weak_lo > weak_hi` or
    /// `weak_per_mille > 1000`.
    pub fn materialize(&self, geometry: &Geometry) -> Option<WeakCellMap> {
        let rows = geometry.rows_per_bank();
        let banks = geometry.banks();
        let cells = rows as usize * banks as usize;
        match *self {
            WeakCellSpec::Uniform => None,
            WeakCellSpec::Flat { threshold } => {
                // Columns still vary row to row so a flat device has a
                // well-defined victim bit; derive them from the
                // threshold so equal specs give equal maps.
                let mut columns = Vec::with_capacity(cells);
                for bank in 0..banks {
                    let mut state = bank_seed(u64::from(threshold), BankId(bank));
                    for _ in 0..rows {
                        columns.push(
                            u32::try_from(rand::splitmix64(&mut state) % u64::from(WEAK_CELL_COLUMNS))
                                .expect("column fits u32"),
                        );
                    }
                }
                Some(WeakCellMap {
                    rows_per_bank: rows,
                    base_threshold: threshold,
                    thresholds: vec![threshold; cells],
                    columns,
                })
            }
            WeakCellSpec::Sampled {
                seed,
                strong,
                weak_lo,
                weak_hi,
                weak_per_mille,
            } => {
                assert!(weak_lo <= weak_hi, "weak threshold band inverted");
                assert!(weak_per_mille <= 1000, "weak_per_mille is per thousand");
                let mut thresholds = Vec::with_capacity(cells);
                let mut columns = Vec::with_capacity(cells);
                for bank in 0..banks {
                    let mut rng = StdRng::seed_from_u64(bank_seed(seed, BankId(bank)));
                    for _ in 0..rows {
                        columns.push(rng.random_range(0..WEAK_CELL_COLUMNS));
                        let weak = rng.random_range(0u32..1000) < weak_per_mille;
                        thresholds.push(if weak {
                            rng.random_range(weak_lo..=weak_hi)
                        } else {
                            strong
                        });
                    }
                }
                Some(WeakCellMap {
                    rows_per_bank: rows,
                    base_threshold: strong,
                    thresholds,
                    columns,
                })
            }
        }
    }
}


impl std::fmt::Display for WeakCellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WeakCellSpec::Uniform => write!(f, "uniform"),
            WeakCellSpec::Flat { threshold } => write!(f, "flat({threshold})"),
            WeakCellSpec::Sampled {
                seed,
                strong,
                weak_lo,
                weak_hi,
                weak_per_mille,
            } => write!(
                f,
                "sampled(seed {seed}, strong {strong}, weak {weak_lo}..={weak_hi}, {weak_per_mille}\u{2030})"
            ),
        }
    }
}

// Manual serde impls (the derive cannot express `if_absent`): encoded
// like the derive would — `"uniform"` as a bare string, payload
// variants as single-key objects — with `Uniform` as the absent-field
// default so every pre-weak-map JSON config parses unchanged
// (mirroring `BackendSpec`'s absent-means-exact contract).
impl Serialize for WeakCellSpec {
    fn to_json_value(&self) -> serde::json::Value {
        use serde::json::Value;
        match *self {
            WeakCellSpec::Uniform => Value::Str("uniform".to_string()),
            WeakCellSpec::Flat { threshold } => Value::Object(vec![(
                "flat".to_string(),
                Value::Object(vec![("threshold".to_string(), threshold.to_json_value())]),
            )]),
            WeakCellSpec::Sampled {
                seed,
                strong,
                weak_lo,
                weak_hi,
                weak_per_mille,
            } => Value::Object(vec![(
                "sampled".to_string(),
                Value::Object(vec![
                    ("seed".to_string(), seed.to_json_value()),
                    ("strong".to_string(), strong.to_json_value()),
                    ("weak_lo".to_string(), weak_lo.to_json_value()),
                    ("weak_hi".to_string(), weak_hi.to_json_value()),
                    ("weak_per_mille".to_string(), weak_per_mille.to_json_value()),
                ]),
            )]),
        }
    }
}

impl Deserialize for WeakCellSpec {
    fn from_json_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        use serde::json::{field, Error, Value};
        match v {
            Value::Str(s) if s == "uniform" => Ok(WeakCellSpec::Uniform),
            Value::Str(other) => Err(Error::new(format!(
                "unknown weak-cell spec {other:?} (expected uniform, flat, sampled)"
            ))),
            Value::Object(pairs) if pairs.len() == 1 => {
                let (tag, inner) = &pairs[0];
                match tag.as_str() {
                    "flat" => {
                        let obj = inner.as_object("WeakCellSpec::Flat")?;
                        Ok(WeakCellSpec::Flat {
                            threshold: field(obj, "threshold")?,
                        })
                    }
                    "sampled" => {
                        let obj = inner.as_object("WeakCellSpec::Sampled")?;
                        Ok(WeakCellSpec::Sampled {
                            seed: field(obj, "seed")?,
                            strong: field(obj, "strong")?,
                            weak_lo: field(obj, "weak_lo")?,
                            weak_hi: field(obj, "weak_hi")?,
                            weak_per_mille: field(obj, "weak_per_mille")?,
                        })
                    }
                    other => Err(Error::new(format!(
                        "unknown weak-cell spec {other:?} (expected flat, sampled)"
                    ))),
                }
            }
            other => Err(Error::new(format!(
                "invalid weak-cell spec: {}",
                other.kind()
            ))),
        }
    }

    /// Absent means the legacy uniform model — the stable campaign
    /// contract for every config written before weak-cell maps.
    fn if_absent() -> Option<Self> {
        Some(WeakCellSpec::Uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> Geometry {
        Geometry::new(256, 2, 8).expect("geometry")
    }

    fn sampled() -> WeakCellSpec {
        WeakCellSpec::Sampled {
            seed: 9,
            strong: 4096,
            weak_lo: 1024,
            weak_hi: 2048,
            weak_per_mille: 100,
        }
    }

    #[test]
    fn uniform_materializes_to_none() {
        assert!(WeakCellSpec::Uniform.materialize(&geometry()).is_none());
    }

    #[test]
    fn flat_map_is_uniform_with_columns() {
        let map = WeakCellSpec::Flat { threshold: 500 }
            .materialize(&geometry())
            .expect("flat map");
        assert_eq!(map.banks(), 2);
        assert_eq!(map.rows_per_bank(), 256);
        for bank in [BankId(0), BankId(1)] {
            assert!(map.weak_rows(bank).is_empty());
            for row in 0..256 {
                assert_eq!(map.threshold(bank, RowAddr(row)), 500);
                assert!(map.column(bank, RowAddr(row)) < WEAK_CELL_COLUMNS);
            }
        }
    }

    #[test]
    fn sampled_map_is_deterministic_and_in_band() {
        let a = sampled().materialize(&geometry()).expect("map");
        let b = sampled().materialize(&geometry()).expect("map");
        assert_eq!(a, b, "same spec + geometry must give the same map");
        let mut weak = 0usize;
        for bank in [BankId(0), BankId(1)] {
            for row in 0..256 {
                let t = a.threshold(bank, RowAddr(row));
                if t == 4096 {
                    continue;
                }
                assert!((1024..=2048).contains(&t), "weak threshold {t} out of band");
                assert!(a.is_weak(bank, RowAddr(row)));
                weak += 1;
            }
            assert_eq!(a.weak_rows(bank).len(), {
                (0..256)
                    .filter(|&r| a.is_weak(bank, RowAddr(r)))
                    .count()
            });
        }
        // 512 rows at 100‰: expect ~51 weak rows; the seeded draw must
        // land in a loose band around it.
        assert!((20..=110).contains(&weak), "weak rows: {weak}");
    }

    #[test]
    fn banks_sample_independent_streams() {
        let map = sampled().materialize(&geometry()).expect("map");
        assert_ne!(
            map.bank_thresholds(BankId(0)),
            map.bank_thresholds(BankId(1)),
            "banks must not repeat each other's cells"
        );
    }

    #[test]
    fn bank_thresholds_slice_matches_point_lookups() {
        let map = sampled().materialize(&geometry()).expect("map");
        let slice = map.bank_thresholds(BankId(1));
        assert_eq!(slice.len(), 256);
        for row in 0..256 {
            assert_eq!(slice[row as usize], map.threshold(BankId(1), RowAddr(row)));
        }
    }

    #[test]
    fn spec_json_round_trips_and_defaults_to_uniform() {
        for spec in [
            WeakCellSpec::Uniform,
            WeakCellSpec::Flat { threshold: 4096 },
            sampled(),
        ] {
            let json = spec.to_json_value();
            let back = WeakCellSpec::from_json_value(&json).expect("round trip");
            assert_eq!(back, spec);
        }
        assert_eq!(WeakCellSpec::if_absent(), Some(WeakCellSpec::Uniform));
        assert_eq!(WeakCellSpec::default(), WeakCellSpec::Uniform);
        assert!(WeakCellSpec::from_json_value(&serde::json::Value::Str(
            "weak".to_string()
        ))
        .is_err());
    }

    #[test]
    #[should_panic(expected = "band inverted")]
    fn inverted_band_rejected() {
        let _ = WeakCellSpec::Sampled {
            seed: 1,
            strong: 4096,
            weak_lo: 2048,
            weak_hi: 1024,
            weak_per_mille: 10,
        }
        .materialize(&geometry());
    }
}
