//! Deterministic per-bank seed derivation.
//!
//! DRAM banks are independent in the disturbance model: an activation in
//! one bank never disturbs rows of another, and every mitigation keeps
//! per-bank state.  The bank-sharded run engine exploits this by giving
//! each bank its own pseudo-random sub-stream, derived here from the run
//! seed and the bank id with a splitmix64 chain.  The derivation is a
//! pure function of `(run_seed, bank)` — independent of worker count,
//! scheduling, or how many other banks exist — which is what makes
//! sharded runs bit-identical to sequential ones.

use crate::addr::BankId;

/// Derives the seed of `bank`'s pseudo-random sub-stream from the run
/// seed.
///
/// Distinct banks (and distinct run seeds) get well-separated streams;
/// the result also differs from `run_seed` itself, so a per-bank stream
/// never aliases the undivided run stream.
///
/// ```
/// use dram_sim::{bank_seed, BankId};
/// let s0 = bank_seed(42, BankId(0));
/// let s1 = bank_seed(42, BankId(1));
/// assert_ne!(s0, s1);
/// assert_ne!(s0, 42);
/// assert_eq!(s0, bank_seed(42, BankId(0)));
/// ```
pub fn bank_seed(run_seed: u64, bank: BankId) -> u64 {
    // Offset the state by (bank + 1) golden-ratio increments, then run
    // two splitmix64 rounds to decorrelate neighbouring banks.
    let mut state = run_seed
        ^ u64::from(bank.0)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = rand::splitmix64(&mut state);
    rand::splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_get_distinct_streams() {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|b| bank_seed(7, BankId(b))).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn run_seeds_get_distinct_streams() {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|s| bank_seed(s, BankId(3))).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(bank_seed(123, BankId(5)), bank_seed(123, BankId(5)));
    }

    #[test]
    fn does_not_alias_the_run_seed() {
        for seed in 0..32 {
            assert_ne!(bank_seed(seed, BankId(0)), seed);
        }
    }
}
