//! The fast tier: per-interval disturbance accumulation.
//!
//! [`FastBackend`] trades per-event counter updates for per-interval
//! resolution.  Within a refresh interval it only *counts*: an
//! activation is three array writes (bump the row's pending count,
//! remember first touches, bump the workload counter).  All physics —
//! address resolution, restores, neighbor disturbance, flip checks —
//! runs once per interval, at `Refresh`, over the distinct rows that
//! were touched.
//!
//! ## What stays exact, what drifts
//!
//! Per-bank totals (activation counts, mitigation activation counts,
//! interval counts) are exact.  Disturbance *physics* is approximate in
//! one specific way: within an interval the model applies restores
//! first (the row's own activations, mitigation restores) and neighbor
//! accumulation second, so an event ordering like *hammer, restore,
//! hammer again* collapses to *restore, hammer everything*.  A row's
//! counter can therefore run up to one interval's worth of activations
//! (≤ 165 on DDR4 timing, see
//! [`crate::DramTiming::max_activations_per_interval`]) above the exact
//! model — a conservative (attacker-favouring) drift that is orders of
//! magnitude below real flip thresholds.  The end-of-interval
//! auto-refresh ([`crate::RefreshSchedule`]) is applied after
//! accumulation, exactly as in the event-accurate model.
//!
//! All state is per-bank and all per-interval iteration follows
//! first-touch/insertion order, so bank-sharded runs merge
//! byte-identically to sequential ones at any worker count.

use crate::backend::DisturbanceBackend;
use crate::disturb::DISTURB_SCALE;
use crate::{
    BankId, Command, DeviceStats, DisturbState, FlipEvent, Geometry, IdentityMapping, RefreshOrder,
    RefreshSchedule, RowAddr, RowMapping, WeakCellMap,
};

/// Per-bank accumulation state of the fast tier.
#[derive(Debug)]
struct FastBank {
    /// Counter/flip physics, shared with the exact model.
    state: DisturbState,
    /// Pending activation count per *logical* row this interval.
    acts: Vec<u32>,
    /// Logical rows with pending activations, in first-touch order.
    touched: Vec<RowAddr>,
    /// Physical rows restored by mitigation commands this interval, in
    /// issue order.
    restores: Vec<RowAddr>,
}

/// The batch-accumulation backend (`--backend fast`).
///
/// Mirrors [`crate::DramDevice`]'s construction surface so
/// configuration code can build either from the same policies.
#[derive(Debug)]
pub struct FastBackend {
    geometry: Geometry,
    mapping: Box<dyn RowMapping>,
    schedule: RefreshSchedule,
    banks: Vec<FastBank>,
    interval: u64,
    stats: DeviceStats,
    flips: Vec<FlipEvent>,
    distance2_sixteenths: u32,
}

impl FastBackend {
    /// Creates a fast backend with identity mapping, sequential refresh
    /// order and the paper's flip threshold.
    pub fn new(geometry: Geometry) -> Self {
        FastBackend::with_policies(
            geometry,
            Box::new(IdentityMapping),
            &RefreshOrder::SequentialNeighbors,
        )
    }

    /// Creates a fast backend with explicit row mapping and refresh
    /// order (timing does not enter the fast model).
    pub fn with_policies(
        geometry: Geometry,
        mapping: Box<dyn RowMapping>,
        refresh_order: &RefreshOrder,
    ) -> Self {
        let schedule = RefreshSchedule::new(&geometry, refresh_order);
        let rows = geometry.rows_per_bank() as usize;
        let banks = (0..geometry.banks())
            .map(|_| FastBank {
                state: DisturbState::with_paper_threshold(geometry.rows_per_bank()),
                acts: vec![0; rows],
                touched: Vec::new(),
                restores: Vec::new(),
            })
            .collect();
        FastBackend {
            geometry,
            mapping,
            schedule,
            banks,
            interval: 0,
            stats: DeviceStats::default(),
            flips: Vec::new(),
            distance2_sixteenths: 0,
        }
    }

    /// Overrides the flip threshold on every bank.
    pub fn set_flip_threshold(&mut self, threshold: u32) {
        for bank in &mut self.banks {
            bank.state.set_flip_threshold(threshold);
        }
    }

    /// Installs a heterogeneous weak-cell map, exactly as
    /// [`crate::DramDevice::set_weak_cell_map`]: the fast tier shares
    /// `DisturbState`, so per-row thresholds carry over unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the map does not cover this backend's geometry.
    pub fn set_weak_cell_map(&mut self, map: &WeakCellMap) {
        assert_eq!(map.banks(), self.geometry.banks(), "map bank count");
        assert_eq!(
            map.rows_per_bank(),
            self.geometry.rows_per_bank(),
            "map row count"
        );
        for (index, bank) in self.banks.iter_mut().enumerate() {
            let id = BankId(u32::try_from(index).expect("bank count fits u32"));
            bank.state.set_row_thresholds(map.bank_thresholds(id));
        }
    }

    /// Enables distance-2 ("blast radius") coupling, in sixteenths of
    /// the distance-1 disturbance.
    ///
    /// # Panics
    ///
    /// Panics if `sixteenths` exceeds 16 (distance-2 coupling cannot
    /// exceed distance-1).
    pub fn set_distance2_coupling(&mut self, sixteenths: u32) {
        assert!(sixteenths <= 16, "distance-2 coupling must be ≤ 1.0");
        self.distance2_sixteenths = sixteenths;
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Total refresh intervals executed so far.
    pub fn current_interval(&self) -> u64 {
        self.interval
    }

    /// Resolves the interval's pending accounting: restores first
    /// (activated rows and mitigation targets), neighbor accumulation
    /// second, the scheduled auto-refresh last — then drains new flips.
    fn resolve_interval(&mut self) {
        let per_window = u64::from(self.geometry.intervals_per_window());
        let in_window =
            u32::try_from(self.interval % per_window).expect("modulo a u32 always fits u32");
        let scheduled = self.schedule.rows_for_interval(in_window);
        let rows = self.geometry.rows_per_bank();
        let d2 = self.distance2_sixteenths;
        let interval = self.interval;
        for (bank_index, bank) in self.banks.iter_mut().enumerate() {
            // 1. Restores: every activated row had its own charge
            // restored by the activation; mitigation restores land in
            // issue order after them.
            for &row in &bank.touched {
                bank.state.restore(self.mapping.physical(row));
            }
            for &phys in &bank.restores {
                bank.state.restore(phys);
            }
            // 2. Neighbor disturbance, one scaled event per distinct
            // activated row (first-touch order keeps flip detection
            // order deterministic and shard-stable).
            for &row in &bank.touched {
                let count = std::mem::take(&mut bank.acts[row.index()]);
                let phys = self.mapping.physical(row);
                let scaled = count.saturating_mul(DISTURB_SCALE);
                if phys.0 > 0 {
                    bank.state.disturb_scaled(RowAddr(phys.0 - 1), scaled);
                }
                if phys.0 + 1 < rows {
                    bank.state.disturb_scaled(RowAddr(phys.0 + 1), scaled);
                }
                if d2 > 0 {
                    let scaled2 = count.saturating_mul(d2);
                    if phys.0 > 1 {
                        bank.state.disturb_scaled(RowAddr(phys.0 - 2), scaled2);
                    }
                    if phys.0 + 2 < rows {
                        bank.state.disturb_scaled(RowAddr(phys.0 + 2), scaled2);
                    }
                }
            }
            bank.touched.clear();
            bank.restores.clear();
            // 3. End-of-interval auto-refresh (physical rows, every
            // bank), exactly as the event-accurate model.
            for &row in scheduled {
                bank.state.restore(row);
            }
            let bank_id = BankId(u32::try_from(bank_index).expect("bank count fits u32"));
            for row in bank.state.take_new_flips() {
                self.flips.push(FlipEvent {
                    bank: bank_id,
                    row,
                    interval,
                });
            }
        }
        self.interval += 1;
        self.stats.refresh_intervals += 1;
    }
}

impl DisturbanceBackend for FastBackend {
    #[inline]
    fn apply(&mut self, command: Command) {
        match command {
            Command::Activate { bank, row } => {
                self.stats.workload_activations += 1;
                let bank = &mut self.banks[bank.index()];
                let pending = &mut bank.acts[row.index()];
                if *pending == 0 {
                    bank.touched.push(row);
                }
                *pending += 1;
            }
            Command::Refresh => self.resolve_interval(),
            Command::ActivateNeighbors { bank, row } => {
                let neighbors = self.mapping.neighbors(row, &self.geometry);
                let bank = &mut self.banks[bank.index()];
                for &n in neighbors.as_slice() {
                    self.stats.mitigation_activations += 1;
                    bank.restores.push(n);
                }
            }
            Command::RefreshRow { bank, row } => {
                self.stats.mitigation_activations += 1;
                let phys = self.mapping.physical(row);
                self.banks[bank.index()].restores.push(phys);
            }
        }
    }

    /// Flips only ever appear in [`FastBackend::resolve_interval`].
    fn defers_flips(&self) -> bool {
        true
    }

    /// The whole point of the tier: a segment of activations is three
    /// array writes per event, with no `Command` dispatch in the loop.
    /// The column is walked in runs of equal bank (bank-sharded and
    /// single-bank traces are one run), hoisting the bank lookup out of
    /// the per-event loop.
    fn apply_activations(&mut self, banks: &[BankId], rows: &[RowAddr]) {
        self.stats.workload_activations +=
            u64::try_from(banks.len()).expect("segment length fits u64");
        let mut i = 0;
        while i < banks.len() {
            let bank_id = banks[i];
            let mut j = i + 1;
            while j < banks.len() && banks[j] == bank_id {
                j += 1;
            }
            let bank = &mut self.banks[bank_id.index()];
            for &row in &rows[i..j] {
                let pending = &mut bank.acts[row.index()];
                if *pending == 0 {
                    bank.touched.push(row);
                }
                *pending += 1;
            }
            i = j;
        }
    }

    fn flips(&self) -> &[FlipEvent] {
        &self.flips
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn max_disturbance_seen(&self) -> u32 {
        self.banks
            .iter()
            .map(|b| b.state.max_disturbance_seen())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramDevice;

    fn small() -> Geometry {
        Geometry::new(64, 2, 8).expect("geometry")
    }

    fn fast(threshold: u32) -> FastBackend {
        let mut backend = FastBackend::new(small());
        backend.set_flip_threshold(threshold);
        backend
    }

    #[test]
    fn uninterrupted_hammering_matches_the_exact_model() {
        // No mid-interval restores of the victims: the accumulated sum
        // equals the exact per-event sum, so flips agree exactly.
        let mut exact = DramDevice::new(small());
        exact.set_flip_threshold(10);
        let mut fast = fast(10);
        for _ in 0..10 {
            let cmd = Command::Activate {
                bank: BankId(0),
                row: RowAddr(5),
            };
            exact.apply(cmd);
            DisturbanceBackend::apply(&mut fast, cmd);
        }
        exact.apply(Command::Refresh);
        DisturbanceBackend::apply(&mut fast, Command::Refresh);
        let exact_rows: Vec<RowAddr> = exact.flips().iter().map(|f| f.row).collect();
        let fast_rows: Vec<RowAddr> = fast.flips.iter().map(|f| f.row).collect();
        assert_eq!(exact_rows, fast_rows);
        assert_eq!(
            DisturbanceBackend::stats(&fast).workload_activations,
            exact.stats().workload_activations
        );
        assert_eq!(fast.max_disturbance_seen(), exact.max_disturbance_seen());
    }

    #[test]
    fn flips_resolve_at_the_interval_boundary() {
        let mut backend = fast(10);
        for _ in 0..12 {
            DisturbanceBackend::apply(
                &mut backend,
                Command::Activate {
                    bank: BankId(0),
                    row: RowAddr(5),
                },
            );
        }
        // Nothing resolved yet: counting only.
        assert!(backend.flips().is_empty());
        assert_eq!(backend.max_disturbance_seen(), 0);
        DisturbanceBackend::apply(&mut backend, Command::Refresh);
        let rows: Vec<RowAddr> = backend.flips().iter().map(|f| f.row).collect();
        assert_eq!(rows, vec![RowAddr(4), RowAddr(6)]);
        assert!(backend.flips().iter().all(|f| f.interval == 0));
        assert_eq!(backend.current_interval(), 1);
    }

    #[test]
    fn mitigation_restore_defuses_the_interval() {
        let mut backend = fast(10);
        for _ in 0..12 {
            DisturbanceBackend::apply(
                &mut backend,
                Command::Activate {
                    bank: BankId(0),
                    row: RowAddr(5),
                },
            );
        }
        // act_n on the aggressor restores both victims; within the
        // interval the restore-first order defuses all 12 activations.
        DisturbanceBackend::apply(
            &mut backend,
            Command::ActivateNeighbors {
                bank: BankId(0),
                row: RowAddr(5),
            },
        );
        DisturbanceBackend::apply(&mut backend, Command::Refresh);
        // Restores run before accumulation, so the victims still absorb
        // this interval's 12 disturbances and flip: the fast tier is
        // conservative (attacker-favouring) within an interval.
        assert_eq!(backend.flips().len(), 2);
        assert_eq!(
            DisturbanceBackend::stats(&backend).mitigation_activations,
            2
        );
    }

    #[test]
    fn mitigation_restore_protects_following_intervals() {
        let mut backend = fast(20);
        for _ in 0..2 {
            for _ in 0..9 {
                DisturbanceBackend::apply(
                    &mut backend,
                    Command::Activate {
                        bank: BankId(0),
                        row: RowAddr(5),
                    },
                );
            }
            DisturbanceBackend::apply(
                &mut backend,
                Command::ActivateNeighbors {
                    bank: BankId(0),
                    row: RowAddr(5),
                },
            );
            DisturbanceBackend::apply(&mut backend, Command::Refresh);
        }
        // Each interval contributes 9 < 20, and the act_n zeroes the
        // carry-over, so no flip accumulates across intervals.
        assert!(backend.flips().is_empty());
        assert!(backend.max_disturbance_seen() < 20);
    }

    #[test]
    fn banks_are_independent() {
        let mut backend = fast(5);
        for _ in 0..6 {
            DisturbanceBackend::apply(
                &mut backend,
                Command::Activate {
                    bank: BankId(1),
                    row: RowAddr(30),
                },
            );
        }
        DisturbanceBackend::apply(&mut backend, Command::Refresh);
        assert!(!backend.flips().is_empty());
        assert!(backend.flips().iter().all(|f| f.bank == BankId(1)));
    }

    #[test]
    fn scheduled_refresh_protects_rows_like_the_exact_model() {
        let mut exact = DramDevice::new(small());
        exact.set_flip_threshold(10);
        let mut fast = fast(10);
        // Hammer below the threshold each window; the auto-refresh of
        // rows 4/6 in interval 0 resets the counters in both models.
        for _ in 0..20 {
            for _ in 0..5 {
                let cmd = Command::Activate {
                    bank: BankId(0),
                    row: RowAddr(5),
                };
                exact.apply(cmd);
                DisturbanceBackend::apply(&mut fast, cmd);
            }
            for _ in 0..8 {
                exact.apply(Command::Refresh);
                DisturbanceBackend::apply(&mut fast, Command::Refresh);
            }
        }
        assert!(exact.flips().is_empty());
        assert!(fast.flips().is_empty());
    }

    #[test]
    fn distance2_coupling_composes_with_accumulation() {
        let mut backend = fast(1000);
        backend.set_distance2_coupling(4); // 25 %
        for _ in 0..8 {
            DisturbanceBackend::apply(
                &mut backend,
                Command::Activate {
                    bank: BankId(0),
                    row: RowAddr(10),
                },
            );
        }
        DisturbanceBackend::apply(&mut backend, Command::Refresh);
        // ±1 victims absorbed 8 whole events; ±2 absorbed 8 × 0.25 = 2.
        assert_eq!(backend.banks[0].state.disturbance(RowAddr(9)), 8);
        assert_eq!(backend.banks[0].state.disturbance(RowAddr(8)), 2);
        assert_eq!(backend.banks[0].state.disturbance(RowAddr(12)), 2);
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn distance2_above_one_rejected() {
        fast(10).set_distance2_coupling(17);
    }
}
