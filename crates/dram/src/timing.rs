//! DRAM timing parameters and mitigation cycle budgets.
//!
//! Table I of the paper fixes the DDR4 timing the whole evaluation runs
//! on; §IV additionally ports every mitigation to a slower DDR3 FPGA
//! controller.  The [`CycleBudget`] type captures the key consequence for
//! a memory-controller-level mitigation: one FSM loop after an `act` must
//! finish within the activate-to-activate time, and one loop after `ref`
//! within the refresh time.

use serde::{Deserialize, Serialize};

/// Which DRAM generation a timing set models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramGeneration {
    /// DDR4 per JESD79-4, the paper's primary target (ASIC, 1.2 GHz).
    Ddr4,
    /// DDR3 as implemented by the FPGA controller of §IV (320 MHz).
    Ddr3,
    /// DDR5 per JESD79-5 (forward-looking extension: 32 ms window,
    /// 3.9 µs tREFI).
    Ddr5,
}

impl std::fmt::Display for DramGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramGeneration::Ddr4 => write!(f, "DDR4"),
            DramGeneration::Ddr3 => write!(f, "DDR3"),
            DramGeneration::Ddr5 => write!(f, "DDR5"),
        }
    }
}

/// Timing parameters of the simulated memory (Table I).
///
/// ```
/// use dram_sim::DramTiming;
/// let t = DramTiming::ddr4();
/// assert_eq!(t.refresh_window_ms, 64.0);
/// let budget = t.cycle_budget();
/// assert_eq!(budget.act_cycles, 54);   // 45 ns at 1.2 GHz
/// assert_eq!(budget.ref_cycles, 420);  // 350 ns at 1.2 GHz
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Generation this timing set belongs to.
    pub generation: DramGeneration,
    /// Refresh window (all rows refreshed once) in milliseconds.
    pub refresh_window_ms: f64,
    /// Refresh interval (one `REF` command) in microseconds.
    pub refresh_interval_us: f64,
    /// Minimum activate-to-activate time (tRC) in nanoseconds.
    pub act_to_act_ns: f64,
    /// Refresh execution time (tRFC) in nanoseconds.
    pub refresh_time_ns: f64,
    /// Clock frequency available to the mitigation logic in GHz.
    pub frequency_ghz: f64,
}

/// Cycle budgets available to a mitigation FSM between commands.
///
/// Derived from [`DramTiming`]: the FSM must return to `idle` before the
/// next command of the same bank can arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CycleBudget {
    /// Cycles available after an `act` (one FSM loop from idle to idle).
    pub act_cycles: u32,
    /// Cycles available after a `ref`.
    pub ref_cycles: u32,
}

impl DramTiming {
    /// DDR4 timing from Table I: 64 ms window, 7.8 µs interval, 45 ns
    /// activate-to-activate, 350 ns refresh, 1.2 GHz.
    pub fn ddr4() -> Self {
        DramTiming {
            generation: DramGeneration::Ddr4,
            refresh_window_ms: 64.0,
            refresh_interval_us: 7.8,
            act_to_act_ns: 45.0,
            refresh_time_ns: 350.0,
            frequency_ghz: 1.2,
        }
    }

    /// DDR3 timing as used for the FPGA port in §IV.  Same protocol-level
    /// windows, but the mitigation logic only runs at 320 MHz, which
    /// shrinks the cycle budgets by ~3.75× and forces the parallelised
    /// implementations compared in Table III.
    pub fn ddr3() -> Self {
        DramTiming {
            generation: DramGeneration::Ddr3,
            refresh_window_ms: 64.0,
            refresh_interval_us: 7.8,
            act_to_act_ns: 45.0,
            refresh_time_ns: 350.0,
            frequency_ghz: 0.32,
        }
    }

    /// DDR5-class timing (extension beyond the paper): the refresh
    /// window halves to 32 ms and tREFI to 3.9 µs, keeping RefInt ≈ 8192
    /// but halving the attacker's per-interval activation budget —
    /// which is exactly the knob the CaPRoMi counter-table sizing
    /// argument depends on.
    pub fn ddr5() -> Self {
        DramTiming {
            generation: DramGeneration::Ddr5,
            refresh_window_ms: 32.0,
            refresh_interval_us: 3.9,
            act_to_act_ns: 46.0,
            refresh_time_ns: 295.0,
            frequency_ghz: 1.6,
        }
    }

    /// Number of refresh intervals per window implied by the timing
    /// (≈ 8192 for 64 ms / 7.8 µs).
    // Physical timing ratios are a few thousand at most, far inside u32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn intervals_per_window(&self) -> u32 {
        ((self.refresh_window_ms * 1000.0) / self.refresh_interval_us).round() as u32
    }

    /// Maximum number of activations a bank can absorb in one refresh
    /// interval: `(refresh_interval − tRFC) / tRC`, i.e. the interval
    /// minus the time consumed by the refresh itself — the
    /// "165 activations" DDR4 bound quoted from TWiCe and used for the
    /// CaPRoMi counter-table sizing argument.
    // A few hundred activations per interval for any real timing set.
    #[allow(clippy::cast_possible_truncation)]
    pub fn max_activations_per_interval(&self) -> u32 {
        ((self.refresh_interval_us * 1000.0 - self.refresh_time_ns) / self.act_to_act_ns).floor()
            as u32
    }

    /// Cycle budget available to a mitigation FSM running at this
    /// timing's clock.
    // Cycle counts per DRAM command are double digits for any real clock.
    #[allow(clippy::cast_possible_truncation)]
    pub fn cycle_budget(&self) -> CycleBudget {
        CycleBudget {
            act_cycles: (self.act_to_act_ns * self.frequency_ghz).floor() as u32,
            ref_cycles: (self.refresh_time_ns * self.frequency_ghz).floor() as u32,
        }
    }
}

impl Default for DramTiming {
    /// Defaults to DDR4 (the paper's primary configuration).
    fn default() -> Self {
        DramTiming::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_budget_matches_section_iv() {
        // "one loop in the FSM … after receiving act should not exceed
        //  45 ns, which is equivalent to 54 clock cycles. For a loop in
        //  the FSM after ref, it should not exceed 350 ns, which is
        //  equivalent to 420 clock cycles."
        let b = DramTiming::ddr4().cycle_budget();
        assert_eq!(b.act_cycles, 54);
        assert_eq!(b.ref_cycles, 420);
    }

    #[test]
    fn ddr3_budget_is_much_tighter() {
        let b = DramTiming::ddr3().cycle_budget();
        assert_eq!(b.act_cycles, 14); // 45 ns at 320 MHz
        assert_eq!(b.ref_cycles, 112); // 350 ns at 320 MHz
        assert!(b.act_cycles < DramTiming::ddr4().cycle_budget().act_cycles);
    }

    #[test]
    fn intervals_per_window_is_8192ish() {
        // 64 ms / 7.8 µs = 8205; the JEDEC nominal count is 8192.  The
        // paper (and Geometry::paper) round to the nominal 8192.
        let n = DramTiming::ddr4().intervals_per_window();
        assert!((8190..=8210).contains(&n), "got {n}");
    }

    #[test]
    fn max_activations_per_interval_is_165ish() {
        // TWiCe's DDR4 bound quoted by the paper: 165 activations.
        let m = DramTiming::ddr4().max_activations_per_interval();
        assert_eq!(m, 165);
    }

    #[test]
    fn generations_display() {
        assert_eq!(DramGeneration::Ddr4.to_string(), "DDR4");
        assert_eq!(DramGeneration::Ddr3.to_string(), "DDR3");
    }

    #[test]
    fn ddr5_keeps_ref_int_but_halves_the_activation_budget() {
        let t = DramTiming::ddr5();
        let n = t.intervals_per_window();
        assert!((8190..=8210).contains(&n), "RefInt {n}");
        // Half of DDR4's 165: the flooding attacker gets ~78 shots per
        // interval, so a DDR5 CaPRoMi could halve its counter table.
        let m = t.max_activations_per_interval();
        assert!((70..=80).contains(&m), "max acts {m}");
        // And the mitigation FSMs still fit the budget comfortably.
        let b = t.cycle_budget();
        assert!(b.act_cycles >= 54, "act budget {}", b.act_cycles);
    }
}
