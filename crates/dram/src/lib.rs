//! # dram-sim — event-accurate DRAM disturbance simulator
//!
//! This crate is the substrate beneath the TiVaPRoMi row-hammer work: a
//! DRAM device model that is *event accurate* with respect to everything a
//! row-hammer mitigation can observe or influence.
//!
//! The model tracks, per bank, how often each row has disturbed its
//! physical neighbors since those neighbors were last restored (by an
//! explicit activation, an auto-refresh, or a mitigation-issued neighbor
//! activation).  When the accumulated disturbance of a row crosses the
//! bit-flip threshold (139 K activations of its aggressors, following
//! Kim et al.), a [`FlipEvent`] is recorded — a successful row-hammer
//! attack.
//!
//! What the crate provides:
//!
//! * [`Geometry`] — rows/banks/refresh-interval structure of the device,
//!   including the paper configuration (64 ms window, 7.8 µs interval,
//!   8192 intervals per window, 8 rows refreshed per interval).
//! * [`DramTiming`] — DDR4/DDR3 timing parameters and the per-command
//!   cycle budgets a memory-controller-level mitigation must meet.
//! * [`RowMapping`] — logical→physical neighbor relationships, including
//!   remapped (defect-replaced) rows.
//! * [`RefreshOrder`] — the four refresh-order policies evaluated in the
//!   paper (§IV): sequential neighbors, neighbors with replacements,
//!   fully random, and counter-with-mask.
//! * [`DramDevice`] — the device itself: feed it [`Command`]s, read back
//!   flips and activity statistics.
//! * [`DisturbanceBackend`] — pluggable fidelity tiers over the same
//!   command stream: the exact device (default), a batch-accumulating
//!   [`FastBackend`] for fleet-scale sweeps, and a [`CycleBackend`]
//!   adding row-buffer state and per-command cycle costs; selected by
//!   [`BackendSpec`].
//! * [`WeakCellSpec`] / [`WeakCellMap`] — heterogeneous per-row flip
//!   thresholds and weak-cell columns, sampled from a seeded
//!   distribution so every shard sees the identical device.
//!
//! ## Example
//!
//! ```
//! use dram_sim::{Command, DramDevice, Geometry, BankId, RowAddr};
//!
//! # fn main() -> Result<(), dram_sim::ConfigError> {
//! // A small device: 1 bank, 64 rows, 8 intervals per refresh window.
//! let geometry = Geometry::new(64, 1, 8)?;
//! let mut dram = DramDevice::new(geometry);
//!
//! // Hammer row 10 past the (tiny, for the example) flip threshold.
//! dram.set_flip_threshold(100);
//! for _ in 0..150 {
//!     dram.apply(Command::Activate { bank: BankId(0), row: RowAddr(10) });
//! }
//! assert!(!dram.flips().is_empty()); // neighbors of row 10 flipped
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod backend;
pub mod command;
pub mod controller;
pub mod cycle;
pub mod device;
pub mod disturb;
pub mod error;
pub mod fast;
pub mod geometry;
pub mod mapping;
pub mod refresh;
pub mod seeding;
pub mod timing;
pub mod weakmap;

pub use addr::{BankId, RowAddr};
pub use backend::{BackendSpec, CycleStats, DisturbanceBackend};
pub use command::Command;
pub use cycle::CycleBackend;
pub use device::{DeviceStats, DramDevice, FlipEvent};
pub use disturb::{DisturbState, DISTURB_SCALE};
pub use error::ConfigError;
pub use fast::FastBackend;
pub use geometry::Geometry;
pub use mapping::{IdentityMapping, RemappedMapping, RowMapping};
pub use refresh::{RefreshOrder, RefreshSchedule};
pub use seeding::bank_seed;
pub use timing::{CycleBudget, DramGeneration, DramTiming};
pub use weakmap::{WeakCellMap, WeakCellSpec, WEAK_CELL_COLUMNS};

/// Bit-flip activation threshold reported by Kim et al. and used
/// throughout the paper: the sum of activations of both aggressor rows
/// that makes a victim start flipping bits.
pub const FLIP_THRESHOLD: u32 = 139_000;

/// Half of [`FLIP_THRESHOLD`], the per-side budget when both neighbors of
/// a victim are aggressors (the paper's 69 K reference point for the
/// flooding analysis).
pub const HALF_FLIP_THRESHOLD: u32 = FLIP_THRESHOLD / 2;
