//! Address newtypes for banks and rows.
//!
//! Row and bank numbers are both small integers; mixing them up is a
//! classic simulator bug, so each gets a newtype ([`RowAddr`],
//! [`BankId`]).  Both are plain `u32` wrappers with public fields — they
//! are passive identifiers, not invariant-bearing types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical row address within one bank.
///
/// The paper operates on *physical* row numbers: row `r`'s physical
/// neighbors are whatever the [`RowMapping`](crate::RowMapping) says they
/// are (usually `r−1` and `r+1`, but remapped for defect-replaced rows).
///
/// ```
/// use dram_sim::RowAddr;
/// let r = RowAddr(41);
/// assert_eq!(r.0 + 1, 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RowAddr(pub u32);

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row{}", self.0)
    }
}

impl From<u32> for RowAddr {
    fn from(value: u32) -> Self {
        RowAddr(value)
    }
}

impl From<RowAddr> for u32 {
    fn from(value: RowAddr) -> Self {
        value.0
    }
}

impl RowAddr {
    /// Index usable for `Vec` based per-row state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bank identifier within the device.
///
/// Every bank carries its own mitigation state (history tables, counter
/// tables) because banks can be attacked independently of each other.
///
/// ```
/// use dram_sim::BankId;
/// assert_eq!(BankId(3).to_string(), "bank3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BankId(pub u32);

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

impl From<u32> for BankId {
    fn from(value: u32) -> Self {
        BankId(value)
    }
}

impl From<BankId> for u32 {
    fn from(value: BankId) -> Self {
        value.0
    }
}

impl BankId {
    /// Index usable for `Vec` based per-bank state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_addr_roundtrips_through_u32() {
        let r: RowAddr = 7u32.into();
        assert_eq!(u32::from(r), 7);
        assert_eq!(r.index(), 7);
    }

    #[test]
    fn bank_id_roundtrips_through_u32() {
        let b: BankId = 2u32.into();
        assert_eq!(u32::from(b), 2);
        assert_eq!(b.index(), 2);
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        assert_eq!(RowAddr(5).to_string(), "row5");
        assert_eq!(BankId(5).to_string(), "bank5");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(RowAddr(1) < RowAddr(2));
        assert!(BankId(0) < BankId(1));
    }
}
