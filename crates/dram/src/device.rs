//! The DRAM device: banks + refresh engine + disturbance bookkeeping.

use crate::{
    BankId, Command, ConfigError, DisturbState, DramTiming, Geometry, IdentityMapping,
    RefreshOrder, RefreshSchedule, RowAddr, RowMapping, WeakCellMap,
};
use serde::{Deserialize, Serialize};

/// A recorded bit flip: a row crossed the disturbance threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlipEvent {
    /// Bank in which the flip occurred.
    pub bank: BankId,
    /// Physical row that flipped.
    pub row: RowAddr,
    /// Global refresh-interval count at which the flip happened.
    pub interval: u64,
}

/// Aggregate activity counters of a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Activations issued by the workload (`Command::Activate`).
    pub workload_activations: u64,
    /// Activations issued by mitigations (`ActivateNeighbors` counts the
    /// neighbors it touches, `RefreshRow` counts one).
    pub mitigation_activations: u64,
    /// Refresh intervals executed.
    pub refresh_intervals: u64,
}

impl DeviceStats {
    /// Mitigation activation overhead in percent of workload activations
    /// — the y-axis of Fig. 4.
    pub fn overhead_percent(&self) -> f64 {
        if self.workload_activations == 0 {
            0.0
        } else {
            100.0 * self.mitigation_activations as f64 / self.workload_activations as f64
        }
    }
}

/// The simulated DRAM device.
///
/// Feed it [`Command`]s; it maintains per-bank disturbance counters, the
/// refresh schedule and the flip log.  See the [crate docs](crate) for a
/// complete example.
#[derive(Debug)]
pub struct DramDevice {
    geometry: Geometry,
    timing: DramTiming,
    mapping: Box<dyn RowMapping>,
    schedule: RefreshSchedule,
    banks: Vec<DisturbState>,
    interval: u64,
    stats: DeviceStats,
    flips: Vec<FlipEvent>,
    /// Distance-2 coupling in sixteenths of the distance-1 disturbance
    /// (0 = the paper's ±1-only model; the blast-radius extension).
    distance2_sixteenths: u32,
}

impl DramDevice {
    /// Creates a device with identity row mapping, sequential refresh
    /// order, DDR4 timing, and the paper's 139 K flip threshold.
    pub fn new(geometry: Geometry) -> Self {
        DramDevice::with_policies(
            geometry,
            DramTiming::ddr4(),
            Box::new(IdentityMapping),
            &RefreshOrder::SequentialNeighbors,
        )
    }

    /// Creates a device with explicit timing, row mapping and refresh
    /// order.
    pub fn with_policies(
        geometry: Geometry,
        timing: DramTiming,
        mapping: Box<dyn RowMapping>,
        refresh_order: &RefreshOrder,
    ) -> Self {
        let schedule = RefreshSchedule::new(&geometry, refresh_order);
        let banks = (0..geometry.banks())
            .map(|_| DisturbState::with_paper_threshold(geometry.rows_per_bank()))
            .collect();
        DramDevice {
            geometry,
            timing,
            mapping,
            schedule,
            banks,
            interval: 0,
            stats: DeviceStats::default(),
            flips: Vec::new(),
            distance2_sixteenths: 0,
        }
    }

    /// Overrides the flip threshold on every bank (tests/examples use
    /// small thresholds; weak-DRAM what-if studies use e.g. 2 K).
    pub fn set_flip_threshold(&mut self, threshold: u32) {
        for b in &mut self.banks {
            b.set_flip_threshold(threshold);
        }
    }

    /// Installs a heterogeneous weak-cell map: every bank takes its
    /// per-row flip thresholds from `map` (see [`crate::weakmap`]).
    ///
    /// # Panics
    ///
    /// Panics if the map does not cover this device's geometry.
    pub fn set_weak_cell_map(&mut self, map: &WeakCellMap) {
        assert_eq!(map.banks(), self.geometry.banks(), "map bank count");
        assert_eq!(
            map.rows_per_bank(),
            self.geometry.rows_per_bank(),
            "map row count"
        );
        for (index, bank) in self.banks.iter_mut().enumerate() {
            let id = BankId(u32::try_from(index).expect("bank count fits u32"));
            bank.set_row_thresholds(map.bank_thresholds(id));
        }
    }

    /// Enables second-order ("blast radius") disturbance: every
    /// activation additionally disturbs rows at distance two by
    /// `sixteenths / 16` of a full disturbance event.  Zero (the
    /// default) is the paper's ±1-only model; measurements on modern
    /// devices report distance-2 coupling of a few to ~25 %.
    ///
    /// # Panics
    ///
    /// Panics if `sixteenths` exceeds 16 (distance-2 coupling cannot
    /// exceed distance-1).
    pub fn set_distance2_coupling(&mut self, sixteenths: u32) {
        assert!(sixteenths <= 16, "distance-2 coupling must be ≤ 1.0");
        self.distance2_sixteenths = sixteenths;
    }

    /// The configured distance-2 coupling in sixteenths.
    pub fn distance2_coupling(&self) -> u32 {
        self.distance2_sixteenths
    }

    /// Applies one command.
    ///
    /// # Panics
    ///
    /// Panics if the command addresses a bank or row outside the
    /// geometry; use [`DramDevice::check`] first for untrusted input.
    pub fn apply(&mut self, command: Command) {
        match command {
            Command::Activate { bank, row } => {
                self.stats.workload_activations += 1;
                self.activate_physical(bank, row);
            }
            Command::Refresh => self.run_refresh_interval(),
            Command::ActivateNeighbors { bank, row } => {
                let neighbors = self.mapping.neighbors(row, &self.geometry);
                for n in neighbors.iter() {
                    self.stats.mitigation_activations += 1;
                    self.activate_physical_raw(bank, n);
                }
                self.drain_flips(bank);
            }
            Command::RefreshRow { bank, row } => {
                self.stats.mitigation_activations += 1;
                self.activate_physical(bank, row);
            }
        }
    }

    /// Validates a command against the geometry without applying it.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`ConfigError`] if the bank or row does
    /// not exist.
    pub fn check(&self, command: Command) -> Result<(), ConfigError> {
        if let Some(bank) = command.bank() {
            self.geometry.check_bank(bank)?;
        }
        if let Some(row) = command.row() {
            self.geometry.check_row(row)?;
        }
        Ok(())
    }

    /// Activation of a *logical* row: resolves the physical location,
    /// restores it, disturbs its physical neighbors.
    fn activate_physical(&mut self, bank: BankId, row: RowAddr) {
        let phys = self.mapping.physical(row);
        self.activate_physical_raw(bank, phys);
        self.drain_flips(bank);
    }

    /// Activation semantics on an already-physical row address.
    fn activate_physical_raw(&mut self, bank: BankId, phys: RowAddr) {
        let rows = self.geometry.rows_per_bank();
        let d2 = self.distance2_sixteenths;
        let state = &mut self.banks[bank.index()];
        state.restore(phys);
        if phys.0 > 0 {
            state.disturb(RowAddr(phys.0 - 1));
        }
        if phys.0 + 1 < rows {
            state.disturb(RowAddr(phys.0 + 1));
        }
        if d2 > 0 {
            if phys.0 > 1 {
                state.disturb_scaled(RowAddr(phys.0 - 2), d2);
            }
            if phys.0 + 2 < rows {
                state.disturb_scaled(RowAddr(phys.0 + 2), d2);
            }
        }
    }

    fn drain_flips(&mut self, bank: BankId) {
        let interval = self.interval;
        let state = &mut self.banks[bank.index()];
        for row in state.take_new_flips() {
            self.flips.push(FlipEvent {
                bank,
                row,
                interval,
            });
        }
    }

    fn run_refresh_interval(&mut self) {
        let in_window = self.interval_in_window();
        // Collect once; the schedule is shared by all banks.
        let rows: Vec<RowAddr> = self.schedule.rows_for_interval(in_window).to_vec();
        for state in &mut self.banks {
            for &row in &rows {
                // Auto-refresh addresses physical rows directly.
                state.restore(row);
            }
        }
        self.interval += 1;
        self.stats.refresh_intervals += 1;
    }

    /// Total refresh intervals executed so far (the global clock).
    pub fn current_interval(&self) -> u64 {
        self.interval
    }

    /// Position of the *next* refresh interval within the current window
    /// (`i ∈ [0, RefInt−1]` in the paper's notation).
    pub fn interval_in_window(&self) -> u32 {
        u32::try_from(self.interval % u64::from(self.geometry.intervals_per_window()))
            .expect("modulo a u32 always fits u32")
    }

    /// Index of the current refresh window.
    pub fn current_window(&self) -> u64 {
        self.interval / u64::from(self.geometry.intervals_per_window())
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The device timing.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// The refresh schedule in effect.
    pub fn schedule(&self) -> &RefreshSchedule {
        &self.schedule
    }

    /// The row mapping in effect.
    pub fn mapping(&self) -> &dyn RowMapping {
        self.mapping.as_ref()
    }

    /// All recorded bit flips.
    pub fn flips(&self) -> &[FlipEvent] {
        &self.flips
    }

    /// Aggregate activity counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Disturbance counter of a logical row.
    pub fn disturbance(&self, bank: BankId, row: RowAddr) -> u32 {
        let phys = self.mapping.physical(row);
        self.banks[bank.index()].disturbance(phys)
    }

    /// Highest disturbance counter ever observed across all banks — the
    /// attack margin (how close any attack came to flipping a bit).
    pub fn max_disturbance_seen(&self) -> u32 {
        self.banks
            .iter()
            .map(DisturbState::max_disturbance_seen)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DramDevice {
        let mut d = DramDevice::new(Geometry::new(64, 2, 8).unwrap());
        d.set_flip_threshold(10);
        d
    }

    #[test]
    fn hammering_flips_neighbors() {
        let mut d = device();
        for _ in 0..10 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(5),
            });
        }
        let flipped: Vec<RowAddr> = d.flips().iter().map(|f| f.row).collect();
        assert_eq!(flipped, vec![RowAddr(4), RowAddr(6)]);
        // Only the hammered bank is affected.
        assert!(d.flips().iter().all(|f| f.bank == BankId(0)));
    }

    #[test]
    fn refresh_between_hammers_prevents_flips() {
        let mut d = device();
        for _ in 0..20 {
            for _ in 0..5 {
                d.apply(Command::Activate {
                    bank: BankId(0),
                    row: RowAddr(5),
                });
            }
            // Run a full refresh window (8 intervals) — rows 4 and 6 are
            // refreshed in interval 0, resetting their counters.
            for _ in 0..8 {
                d.apply(Command::Refresh);
            }
        }
        assert!(d.flips().is_empty());
        assert!(d.max_disturbance_seen() < 10);
    }

    #[test]
    fn activate_neighbors_restores_both_victims() {
        let mut d = device();
        for _ in 0..9 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(5),
            });
        }
        assert_eq!(d.disturbance(BankId(0), RowAddr(4)), 9);
        d.apply(Command::ActivateNeighbors {
            bank: BankId(0),
            row: RowAddr(5),
        });
        assert_eq!(d.disturbance(BankId(0), RowAddr(4)), 0);
        assert_eq!(d.disturbance(BankId(0), RowAddr(6)), 0);
        assert!(d.flips().is_empty());
        // act_n on an interior row costs two extra activations.
        assert_eq!(d.stats().mitigation_activations, 2);
    }

    #[test]
    fn refresh_row_counts_one_extra_activation() {
        let mut d = device();
        d.apply(Command::RefreshRow {
            bank: BankId(1),
            row: RowAddr(3),
        });
        let s = d.stats();
        assert_eq!(s.mitigation_activations, 1);
        assert_eq!(s.workload_activations, 0);
    }

    #[test]
    fn activation_of_victim_restores_itself() {
        let mut d = device();
        for _ in 0..9 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(5),
            });
        }
        // The victim itself is accessed by the workload: its charge is
        // restored and the attack counter restarts.
        d.apply(Command::Activate {
            bank: BankId(0),
            row: RowAddr(4),
        });
        assert_eq!(d.disturbance(BankId(0), RowAddr(4)), 0);
        for _ in 0..9 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(5),
            });
        }
        // Row 4 restarted from zero, so its 9 new disturbances stay below
        // the threshold of 10.  Row 6 was never restored (9 + 9 = 18) and
        // is the only flip.
        assert!(!d.banks[0].is_flipped(RowAddr(4)));
        let flipped: Vec<RowAddr> = d.flips().iter().map(|f| f.row).collect();
        assert_eq!(flipped, vec![RowAddr(6)]);
    }

    #[test]
    fn interval_clock_and_window_wrap() {
        let mut d = device();
        assert_eq!(d.interval_in_window(), 0);
        for _ in 0..8 {
            d.apply(Command::Refresh);
        }
        assert_eq!(d.current_interval(), 8);
        assert_eq!(d.interval_in_window(), 0);
        assert_eq!(d.current_window(), 1);
        d.apply(Command::Refresh);
        assert_eq!(d.interval_in_window(), 1);
    }

    #[test]
    fn overhead_percent_computes_ratio() {
        let mut d = device();
        for _ in 0..100 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(20),
            });
        }
        d.apply(Command::ActivateNeighbors {
            bank: BankId(0),
            row: RowAddr(20),
        });
        assert!((d.stats().overhead_percent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn check_rejects_out_of_range() {
        let d = device();
        assert!(d
            .check(Command::Activate {
                bank: BankId(9),
                row: RowAddr(0)
            })
            .is_err());
        assert!(d
            .check(Command::Activate {
                bank: BankId(0),
                row: RowAddr(64)
            })
            .is_err());
        assert!(d.check(Command::Refresh).is_ok());
    }

    #[test]
    fn edge_row_activate_neighbors_costs_one() {
        let mut d = device();
        d.apply(Command::ActivateNeighbors {
            bank: BankId(0),
            row: RowAddr(0),
        });
        assert_eq!(d.stats().mitigation_activations, 1);
    }

    #[test]
    fn stats_default_overhead_is_zero() {
        assert_eq!(DeviceStats::default().overhead_percent(), 0.0);
    }

    #[test]
    fn distance2_coupling_disturbs_second_neighbors() {
        let mut d = device();
        d.set_distance2_coupling(4); // 25 %
        for _ in 0..8 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(10),
            });
        }
        assert_eq!(d.disturbance(BankId(0), RowAddr(9)), 8);
        assert_eq!(d.disturbance(BankId(0), RowAddr(8)), 2); // 8 × 0.25
        assert_eq!(d.disturbance(BankId(0), RowAddr(12)), 2);
        assert_eq!(d.distance2_coupling(), 4);
    }

    #[test]
    fn distance2_victims_can_flip() {
        let mut d = device(); // threshold 10
        d.set_distance2_coupling(8); // 50 %
        for _ in 0..20 {
            d.apply(Command::Activate {
                bank: BankId(0),
                row: RowAddr(10),
            });
        }
        // Row 8 got 20 × 0.5 = 10 ≥ threshold.
        let flipped: Vec<RowAddr> = d.flips().iter().map(|f| f.row).collect();
        assert!(flipped.contains(&RowAddr(8)), "{flipped:?}");
        assert!(flipped.contains(&RowAddr(12)));
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn distance2_coupling_above_one_rejected() {
        let mut d = device();
        d.set_distance2_coupling(17);
    }
}
