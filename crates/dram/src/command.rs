//! Memory-controller commands visible to the disturbance model.

use crate::{BankId, RowAddr};
use serde::{Deserialize, Serialize};

/// A command arriving at the DRAM device.
///
/// Only the commands that matter for row-hammer behaviour are modelled:
/// row activations (the disturbance source), auto-refresh (the periodic
/// restore), and the `act_n` "activate neighbors" command used by
/// mitigations in the literature (Kim et al., TWiCe) and by TiVaPRoMi's
/// interrupt path.
///
/// ```
/// use dram_sim::{Command, BankId, RowAddr};
/// let cmd = Command::Activate { bank: BankId(0), row: RowAddr(3) };
/// assert_eq!(cmd.bank(), Some(BankId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Activate `row` in `bank` (a normal memory access).
    Activate {
        /// Target bank.
        bank: BankId,
        /// Activated row.
        row: RowAddr,
    },
    /// Auto-refresh: executes the next refresh interval on every bank.
    Refresh,
    /// `act_n`: activate both physical neighbors of `row` to restore
    /// their charge (the mitigation command).  The neighbor addresses are
    /// resolved inside the device because they depend on the internal
    /// row mapping.
    ActivateNeighbors {
        /// Target bank.
        bank: BankId,
        /// The aggressor row whose neighbors are restored.
        row: RowAddr,
    },
    /// Refresh a single explicit row (used by mitigations that restore
    /// one victim at a time: PARA, ProHit, MRLoc).
    RefreshRow {
        /// Target bank.
        bank: BankId,
        /// The victim row to restore.
        row: RowAddr,
    },
}

impl Command {
    /// The bank the command addresses, if it is bank-specific.
    pub fn bank(&self) -> Option<BankId> {
        match self {
            Command::Activate { bank, .. }
            | Command::ActivateNeighbors { bank, .. }
            | Command::RefreshRow { bank, .. } => Some(*bank),
            Command::Refresh => None,
        }
    }

    /// The row the command addresses, if any.
    pub fn row(&self) -> Option<RowAddr> {
        match self {
            Command::Activate { row, .. }
            | Command::ActivateNeighbors { row, .. }
            | Command::RefreshRow { row, .. } => Some(*row),
            Command::Refresh => None,
        }
    }

    /// Whether this command was issued by a mitigation rather than the
    /// workload (counts toward activation overhead).
    pub fn is_mitigation(&self) -> bool {
        matches!(
            self,
            Command::ActivateNeighbors { .. } | Command::RefreshRow { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let act = Command::Activate {
            bank: BankId(1),
            row: RowAddr(2),
        };
        assert_eq!(act.bank(), Some(BankId(1)));
        assert_eq!(act.row(), Some(RowAddr(2)));
        assert!(!act.is_mitigation());

        let refr = Command::Refresh;
        assert_eq!(refr.bank(), None);
        assert_eq!(refr.row(), None);
        assert!(!refr.is_mitigation());

        let actn = Command::ActivateNeighbors {
            bank: BankId(0),
            row: RowAddr(9),
        };
        assert!(actn.is_mitigation());
        assert_eq!(actn.row(), Some(RowAddr(9)));

        let rr = Command::RefreshRow {
            bank: BankId(0),
            row: RowAddr(9),
        };
        assert!(rr.is_mitigation());
    }
}
