//! Logical→physical row neighbor relationships.
//!
//! MRLoc and ProHit assume the neighbors of row `N` are `N−1` and `N+1`,
//! "but this is not always true, as defected rows might be remapped to
//! other rows" (§II, citing TWiCe).  The [`RowMapping`] trait makes the
//! neighbor relation explicit so both the device and the mitigations can
//! be exercised with and without remapping.

use crate::{Geometry, RowAddr};
use std::collections::HashMap;
use std::fmt::Debug;

/// Resolves the *physical* neighbors of a row.
///
/// Implementations must be deterministic: the device and the analysis
/// code both query the mapping and must agree.
pub trait RowMapping: Debug + Send + Sync {
    /// Physical location backing logical row `row`.
    ///
    /// For the identity mapping this is `row` itself; remapped (defect
    /// replaced) rows live elsewhere.
    fn physical(&self, row: RowAddr) -> RowAddr;

    /// The physical neighbors disturbed when `row` is activated.
    ///
    /// Rows 0 and `RowsPB − 1` have only one physical neighbor, so the
    /// result holds one or two rows.
    fn neighbors(&self, row: RowAddr, geometry: &Geometry) -> Neighbors {
        let phys = self.physical(row);
        let mut out = Neighbors::default();
        if phys.0 > 0 {
            out.push(RowAddr(phys.0 - 1));
        }
        if phys.0 + 1 < geometry.rows_per_bank() {
            out.push(RowAddr(phys.0 + 1));
        }
        out
    }
}

/// Up to two neighbor rows, inline (no allocation on the hot path).
///
/// ```
/// use dram_sim::{IdentityMapping, RowMapping, Geometry, RowAddr};
/// let g = Geometry::new(64, 1, 8)?;
/// let n = IdentityMapping.neighbors(RowAddr(0), &g);
/// assert_eq!(n.as_slice(), &[RowAddr(1)]); // edge row: one neighbor
/// # Ok::<(), dram_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Neighbors {
    rows: [RowAddr; 2],
    len: u8,
}

impl Neighbors {
    /// Adds a neighbor.
    ///
    /// # Panics
    ///
    /// Panics if already holding two rows.
    pub fn push(&mut self, row: RowAddr) {
        assert!(self.len < 2, "a row has at most two neighbors");
        self.rows[self.len as usize] = row;
        self.len += 1;
    }

    /// View of the stored neighbors.
    pub fn as_slice(&self) -> &[RowAddr] {
        &self.rows[..self.len as usize]
    }

    /// Number of neighbors (1 for edge rows, 2 otherwise).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no neighbors (only possible in 1-row banks).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the neighbors by value.
    pub fn iter(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.as_slice().iter().copied()
    }
}

impl<'a> IntoIterator for &'a Neighbors {
    type Item = RowAddr;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, RowAddr>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// The common case: logical row `r` is physical row `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdentityMapping;

impl RowMapping for IdentityMapping {
    #[inline]
    fn physical(&self, row: RowAddr) -> RowAddr {
        row
    }
}

/// A mapping with defect-replaced rows: selected logical rows are backed
/// by spare physical rows, so their disturbance lands elsewhere.
///
/// ```
/// use dram_sim::{RemappedMapping, RowMapping, Geometry, RowAddr};
/// let g = Geometry::new(64, 1, 8)?;
/// let m = RemappedMapping::new(vec![(RowAddr(10), RowAddr(60))]);
/// // Row 10 is physically row 60, so activating it disturbs 59 and 61:
/// let n = m.neighbors(RowAddr(10), &g);
/// assert_eq!(n.as_slice(), &[RowAddr(59), RowAddr(61)]);
/// # Ok::<(), dram_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemappedMapping {
    remap: HashMap<RowAddr, RowAddr>,
}

impl RemappedMapping {
    /// Creates a mapping from `(logical, physical)` replacement pairs.
    /// Rows not listed map to themselves.
    pub fn new<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (RowAddr, RowAddr)>,
    {
        RemappedMapping {
            remap: pairs.into_iter().collect(),
        }
    }

    /// Number of remapped rows.
    pub fn remapped_count(&self) -> usize {
        self.remap.len()
    }
}

impl RowMapping for RemappedMapping {
    #[inline]
    fn physical(&self, row: RowAddr) -> RowAddr {
        self.remap.get(&row).copied().unwrap_or(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geometry() -> Geometry {
        Geometry::new(64, 1, 8).unwrap()
    }

    #[test]
    fn identity_interior_row_has_two_neighbors() {
        let g = small_geometry();
        let n = IdentityMapping.neighbors(RowAddr(5), &g);
        assert_eq!(n.as_slice(), &[RowAddr(4), RowAddr(6)]);
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
    }

    #[test]
    fn identity_edge_rows_have_one_neighbor() {
        let g = small_geometry();
        assert_eq!(
            IdentityMapping.neighbors(RowAddr(0), &g).as_slice(),
            &[RowAddr(1)]
        );
        assert_eq!(
            IdentityMapping.neighbors(RowAddr(63), &g).as_slice(),
            &[RowAddr(62)]
        );
    }

    #[test]
    fn remapped_row_disturbs_replacement_site() {
        let g = small_geometry();
        let m = RemappedMapping::new(vec![(RowAddr(1), RowAddr(30))]);
        assert_eq!(m.physical(RowAddr(1)), RowAddr(30));
        assert_eq!(m.physical(RowAddr(2)), RowAddr(2));
        assert_eq!(
            m.neighbors(RowAddr(1), &g).as_slice(),
            &[RowAddr(29), RowAddr(31)]
        );
        assert_eq!(m.remapped_count(), 1);
    }

    #[test]
    fn neighbors_iterates_by_value() {
        let g = small_geometry();
        let n = IdentityMapping.neighbors(RowAddr(5), &g);
        let collected: Vec<RowAddr> = n.iter().collect();
        assert_eq!(collected, vec![RowAddr(4), RowAddr(6)]);
        let collected2: Vec<RowAddr> = (&n).into_iter().collect();
        assert_eq!(collected, collected2);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn neighbors_rejects_third_push() {
        let mut n = Neighbors::default();
        n.push(RowAddr(0));
        n.push(RowAddr(1));
        n.push(RowAddr(2));
    }
}
