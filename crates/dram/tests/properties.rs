//! Property-based tests for the DRAM substrate.

use dram_sim::{
    BankId, Command, DisturbState, DramDevice, Geometry, IdentityMapping, RefreshOrder,
    RefreshSchedule, RowAddr, RowMapping,
};
use proptest::prelude::*;

/// Geometries with power-of-two interval counts (as real DRAM uses).
fn geometries() -> impl Strategy<Value = Geometry> {
    (3u32..=7, 1u32..=4).prop_map(|(log_intervals, rpi_factor)| {
        let intervals = 1 << log_intervals;
        Geometry::new(intervals * 8 * rpi_factor, 1, intervals).expect("valid geometry")
    })
}

fn policies() -> impl Strategy<Value = RefreshOrder> {
    prop_oneof![
        Just(RefreshOrder::SequentialNeighbors),
        any::<u64>().prop_map(|seed| RefreshOrder::FullyRandom { seed }),
        any::<u32>().prop_map(|mask| RefreshOrder::CounterMask { mask }),
        (0u32..8, 8u32..16).prop_map(|(a, b)| RefreshOrder::SequentialWithReplacements {
            replacements: vec![(RowAddr(a), RowAddr(b))],
        }),
    ]
}

proptest! {
    /// Every refresh policy refreshes every row exactly once per window.
    #[test]
    fn schedule_is_permutation(geometry in geometries(), policy in policies()) {
        let schedule = RefreshSchedule::new(&geometry, &policy);
        let mut seen = vec![false; geometry.rows_per_bank() as usize];
        for i in 0..schedule.intervals() {
            for &row in schedule.rows_for_interval(i) {
                prop_assert!(!seen[row.index()], "row {row} refreshed twice under {policy}");
                seen[row.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// `interval_of` is consistent with `rows_for_interval`.
    #[test]
    fn schedule_inverse_is_consistent(geometry in geometries(), policy in policies()) {
        let schedule = RefreshSchedule::new(&geometry, &policy);
        for i in 0..schedule.intervals() {
            for &row in schedule.rows_for_interval(i) {
                prop_assert_eq!(schedule.interval_of(row), i);
            }
        }
    }

    /// The disturbance counter equals the number of `disturb` calls since
    /// the last `restore`, regardless of interleaving.
    #[test]
    fn disturbance_counts_since_restore(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut state = DisturbState::new(4, u32::MAX);
        let mut expected = 0u32;
        for is_disturb in ops {
            if is_disturb {
                state.disturb(RowAddr(1));
                expected += 1;
            } else {
                state.restore(RowAddr(1));
                expected = 0;
            }
            prop_assert_eq!(state.disturbance(RowAddr(1)), expected);
        }
    }

    /// A row flips iff its disturbance ever reached the threshold, and
    /// each flip is reported exactly once.
    #[test]
    fn flips_match_threshold_crossings(
        threshold in 1u32..50,
        hits in proptest::collection::vec(0u32..4, 0..300),
    ) {
        let mut state = DisturbState::new(4, threshold);
        let mut counts = [0u32; 4];
        let mut expected_flips = [false; 4];
        for row in hits {
            state.disturb(RowAddr(row));
            counts[row as usize] += 1;
            if counts[row as usize] >= threshold {
                expected_flips[row as usize] = true;
            }
        }
        let mut reported = [false; 4];
        for row in state.take_new_flips() {
            prop_assert!(!reported[row.index()], "duplicate flip report");
            reported[row.index()] = true;
        }
        for r in 0..4u32 {
            prop_assert_eq!(state.is_flipped(RowAddr(r)), expected_flips[r as usize]);
            prop_assert_eq!(reported[r as usize], expected_flips[r as usize]);
        }
    }

    /// Interior rows have exactly two neighbors at distance one; edge
    /// rows have one.
    #[test]
    fn neighbors_are_adjacent(geometry in geometries(), row in 0u32..64) {
        prop_assume!(row < geometry.rows_per_bank());
        let row = RowAddr(row);
        let neighbors = IdentityMapping.neighbors(row, &geometry);
        let edge = row.0 == 0 || row.0 == geometry.rows_per_bank() - 1;
        prop_assert_eq!(neighbors.len(), if edge { 1 } else { 2 });
        for n in neighbors.iter() {
            prop_assert_eq!(n.0.abs_diff(row.0), 1);
        }
    }

    /// Device invariant: without mitigation, hammering a row `k` times
    /// between refreshes flips its neighbors iff `k ≥ threshold` survives
    /// the refresh schedule.
    #[test]
    fn refresh_resets_disturbance_in_device(
        hammer_per_round in 1u32..8,
        rounds in 1u32..12,
    ) {
        let geometry = Geometry::new(64, 1, 8).unwrap();
        let mut device = DramDevice::new(geometry);
        let threshold = 10;
        device.set_flip_threshold(threshold);
        let aggressor = RowAddr(5); // victims 4 and 6 refresh at interval 0
        for _ in 0..rounds {
            for _ in 0..hammer_per_round {
                device.apply(Command::Activate { bank: BankId(0), row: aggressor });
            }
            for _ in 0..8 {
                device.apply(Command::Refresh);
            }
        }
        // Each round's disturbance is cleared by its full-window refresh,
        // so flips occur iff one round alone crosses the threshold.
        prop_assert_eq!(!device.flips().is_empty(), hammer_per_round >= threshold);
    }
}
