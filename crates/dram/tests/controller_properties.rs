//! Property-based tests for the cycle-level memory controller.

use dram_sim::controller::{ControllerConfig, MemoryController, MitigationPriority, Request};
use dram_sim::{BankId, DramTiming, Geometry, RowAddr};
use proptest::prelude::*;

fn geometry() -> Geometry {
    Geometry::paper().with_banks(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every enqueued demand request completes, and every
    /// mitigation activation is issued, for arbitrary arrival patterns.
    #[test]
    fn all_work_completes(
        demands in proptest::collection::vec((0u32..4, 0u32..100, 0u64..20_000), 0..60),
        mitigations in proptest::collection::vec((0u32..4, 0u32..100), 0..20),
        urgent in any::<bool>(),
    ) {
        let priority = if urgent {
            MitigationPriority::Urgent
        } else {
            MitigationPriority::Background
        };
        let config = ControllerConfig::from_timing(&DramTiming::ddr4()).with_priority(priority);
        let mut mc = MemoryController::new(geometry(), config);
        // FCFS queue semantics require non-decreasing arrivals.
        let mut sorted = demands.clone();
        sorted.sort_by_key(|&(_, _, a)| a);
        for &(bank, row, arrival) in &sorted {
            mc.enqueue_demand(Request {
                bank: BankId(bank),
                row: RowAddr(row),
                arrival_cycle: arrival,
            });
        }
        for &(bank, row) in &mitigations {
            mc.enqueue_mitigation(BankId(bank), RowAddr(row));
        }
        mc.drain(0);
        let stats = mc.stats();
        prop_assert_eq!(stats.completed, sorted.len() as u64);
        prop_assert_eq!(stats.mitigation_activations, mitigations.len() as u64);
        prop_assert_eq!(mc.mitigation_backlog(), 0);
    }

    /// Every demand latency is at least tRC (the activation itself).
    #[test]
    fn latency_lower_bound(
        demands in proptest::collection::vec((0u32..4, 0u64..5000), 1..30),
    ) {
        let config = ControllerConfig::from_timing(&DramTiming::ddr4());
        let mut mc = MemoryController::new(geometry(), config);
        let mut sorted = demands.clone();
        sorted.sort_by_key(|&(_, a)| a);
        for &(bank, arrival) in &sorted {
            mc.enqueue_demand(Request {
                bank: BankId(bank),
                row: RowAddr(1),
                arrival_cycle: arrival,
            });
        }
        mc.drain(0);
        let stats = mc.stats();
        prop_assert!(stats.total_latency_cycles >= 54 * stats.completed);
        prop_assert!(stats.max_latency_cycles >= 54);
        prop_assert!(
            u128::from(stats.max_latency_cycles) * u128::from(stats.completed)
                >= u128::from(stats.total_latency_cycles)
        );
    }

    /// Same-bank activations never issue closer than tRC apart.
    #[test]
    fn t_rc_is_respected(count in 1usize..20) {
        let config = ControllerConfig::from_timing(&DramTiming::ddr4());
        let mut mc = MemoryController::new(geometry(), config);
        mc.record_issued(true);
        for _ in 0..count {
            mc.enqueue_demand(Request { bank: BankId(2), row: RowAddr(9), arrival_cycle: 0 });
        }
        mc.drain(0);
        let issued: Vec<u64> = mc
            .issued()
            .iter()
            .filter(|(b, _, _)| *b == BankId(2))
            .map(|&(_, _, c)| c)
            .collect();
        for pair in issued.windows(2) {
            prop_assert!(pair[1] >= pair[0] + 54, "{pair:?}");
        }
    }

    /// Refreshes happen on cadence regardless of load.
    #[test]
    fn refresh_cadence_holds(load in 0usize..50, horizon in 1u64..6) {
        let config = ControllerConfig::from_timing(&DramTiming::ddr4());
        let mut mc = MemoryController::new(geometry(), config);
        for i in 0..load {
            mc.enqueue_demand(Request {
                bank: BankId((i % 4) as u32),
                row: RowAddr(1),
                arrival_cycle: 0,
            });
        }
        let cycles = horizon * 9360 + 1;
        mc.run_until(cycles);
        prop_assert_eq!(mc.stats().refreshes, horizon);
    }
}
