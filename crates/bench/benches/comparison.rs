//! Table III regenerator + area-model benchmark.
//!
//! The printed table uses a reduced simulation scale; run
//! `cargo run --release --bin table3_comparison -- paper` for the
//! evaluation scale.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::DramGeneration;
use rh_bench::print_scale;
use rh_harness::experiments::table3;
use rh_hwmodel::{area, HwParams, Technique};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== Table III — comparison (reduced scale) ===");
    let results = table3::run(&print_scale());
    println!("{}", table3::render(&results));

    let params = HwParams::paper();
    c.bench_function("table3/lut_breakdowns", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for t in Technique::TABLE3 {
                total += area::area(t, &params, DramGeneration::Ddr4).total();
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
