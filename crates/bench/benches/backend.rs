//! Fidelity-tier benchmark: the three disturbance backends on a
//! fleet-scale weak-cell screening campaign, plus the cycle tier's
//! bandwidth-overhead regeneration.  Writes `BENCH_backend.json` at the
//! workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::{BackendSpec, BankId, RowAddr};
use mem_trace::{EventBatch, TraceEvent, TraceSource};
use rh_fleet::{CampaignSpec, CohortSpec, Fleet};
use rh_harness::{engine, scenario, techniques, ExperimentScale, NullObserver, RunConfig, Runner};
use rh_hwmodel::Technique;
use std::hint::black_box;
use std::time::Instant;

/// One device's recorded trace, as per-interval SoA columns.
type Cols = (Vec<BankId>, Vec<RowAddr>, Vec<bool>);

/// Replays recorded columns straight into the batch buffer — a memcpy
/// per interval, so the timed arms below contain no trace synthesis.
struct ColumnReplay<'a> {
    intervals: &'a [Cols],
    pos: usize,
}

impl TraceSource for ColumnReplay<'_> {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        match self.intervals.get(self.pos) {
            Some((banks, rows, aggrs)) => {
                for ((&bank, &row), &aggressor) in banks.iter().zip(rows).zip(aggrs) {
                    out.push(TraceEvent {
                        bank,
                        row,
                        aggressor,
                    });
                }
                self.pos += 1;
                true
            }
            None => false,
        }
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.intervals.len() as u64)
    }

    fn next_batch(&mut self, batch: &mut EventBatch, max_intervals: u64) -> bool {
        batch.clear();
        let cap = max_intervals.min(batch.target_events() as u64);
        let mut delivered = 0u64;
        while delivered < cap && !batch.is_full() {
            let Some((banks, rows, aggrs)) = self.intervals.get(self.pos) else {
                break;
            };
            batch.push_interval_columns(banks, rows, aggrs);
            self.pos += 1;
            delivered += 1;
        }
        delivered > 0
    }
}

/// The benchmark campaign: a 1024-device weak-cell screening sweep —
/// the fast tier's intended fleet workload.  Every cohort hammers the
/// weak-threshold band with the flooding attack; the cohorts differ in
/// which probabilistic defense screens the population.
fn screening_campaign(devices: u64) -> CampaignSpec {
    let quarter = devices / 4;
    CampaignSpec::new(7)
        .cohort(
            CohortSpec::new("screen-cra", devices - 2 * quarter)
                .banks(1, 2)
                .flip_threshold(1024, 2048)
                .attack("flooding")
                .techniques(vec![Technique::Cra]),
        )
        .cohort(
            CohortSpec::new("screen-para", quarter)
                .banks(1, 2)
                .flip_threshold(1024, 2048)
                .attack("flooding")
                .techniques(vec![Technique::Para]),
        )
        .cohort(
            CohortSpec::new("screen-lipromi", quarter)
                .banks(1, 2)
                .flip_threshold(1024, 2048)
                .attack("flooding")
                .techniques(vec![Technique::LiPromi]),
        )
}

/// Three-tier comparison on the screening campaign.
///
/// Per device, the trace is generated **once** and each tier replays
/// the identical recorded columns, so the timed arms measure exactly
/// what a tier owns: engine delivery plus disturbance accounting.
/// (Trace synthesis is tier-invariant by construction — the end-to-end
/// `Fleet::run` wall times, which include it, are reported alongside.)
/// Results go to `BENCH_backend.json`; `--quick` (or `--test`, or the
/// `RH_BENCH_QUICK` environment variable) shrinks the rep count for CI.
fn backend_tiers(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("RH_BENCH_QUICK").is_some();
    let devices = 1024u64;
    let reps = if quick { 2 } else { 4 };
    let spec = screening_campaign(devices);

    let min_secs = |run: &mut dyn FnMut() -> u64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            black_box(run());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    // Simulation-only arms: record each device's trace once, then time
    // every tier on the identical columns.
    let mut sim = [0.0f64; 3];
    let mut events = 0u64;
    for index in 0..devices {
        let device = spec.device(index).expect("device index in range");
        let config = device.run_config();
        let mut intervals: Vec<Cols> = Vec::new();
        let mut source = device.spec_trace(&config);
        let mut out = Vec::new();
        while source.next_interval(&mut out) {
            events += out.len() as u64;
            let mut cols: Cols = Cols::default();
            for e in &out {
                cols.0.push(e.bank);
                cols.1.push(e.row);
                cols.2.push(e.aggressor);
            }
            intervals.push(cols);
            out.clear();
        }
        for (slot, tier) in BackendSpec::ALL.into_iter().enumerate() {
            let mut config = config.clone();
            config.backend = tier;
            sim[slot] += min_secs(&mut || {
                let mut mitigation = techniques::build(device.technique, &config, device.seed);
                engine::run_observed(
                    ColumnReplay {
                        intervals: &intervals,
                        pos: 0,
                    },
                    mitigation.as_mut(),
                    &config,
                    &mut NullObserver,
                )
                .workload_activations
            });
        }
    }
    let fast_speedup = sim[0] / sim[1];
    println!(
        "backend_tiers/sim        {devices} devices, {events} events: \
         exact {:.0} ms  fast {:.0} ms  cycle {:.0} ms  (fast speedup {fast_speedup:.2}x)",
        sim[0] * 1e3,
        sim[1] * 1e3,
        sim[2] * 1e3,
    );

    // End-to-end arms: the fleet scheduler including trace synthesis.
    let mut end_to_end = [0.0f64; 2];
    for (slot, tier) in [BackendSpec::Exact, BackendSpec::Fast]
        .into_iter()
        .enumerate()
    {
        let mut spec = spec.clone();
        for cohort in &mut spec.cohorts {
            cohort.backend = tier;
        }
        end_to_end[slot] = min_secs(&mut || {
            Fleet::new(spec.clone())
                .workers(2)
                .run()
                .expect("screening campaign is valid")
                .devices
        });
    }
    let end_to_end_speedup = end_to_end[0] / end_to_end[1];
    println!(
        "backend_tiers/end_to_end exact {:.0} ms  fast {:.0} ms  ({end_to_end_speedup:.2}x \
         including tier-invariant trace synthesis)",
        end_to_end[0] * 1e3,
        end_to_end[1] * 1e3,
    );

    // Cycle-tier headline: mitigation bandwidth overhead at quick scale
    // (TWiCe's trigger threshold is unreachable on the 1/64 fleet
    // geometry, so this section runs the full quick-scale paper mix).
    let mut cycled = RunConfig::paper(&ExperimentScale::quick());
    cycled.backend = BackendSpec::Cycle;
    let mut overhead_rows = Vec::new();
    for technique in [Technique::Para, Technique::TwiCe] {
        let metrics = Runner::new(cycled.clone())
            .technique(technique)
            .seed(2)
            .run(scenario::paper_mix(&cycled, 2));
        println!(
            "backend_tiers/cycle      {:<6} {:.4}% bandwidth overhead, {} mitigation cycles, \
             row-buffer hit rate {:.1}%",
            technique.name(),
            metrics.bandwidth_overhead_percent(),
            metrics.mitigation_cycles(),
            100.0 * metrics.row_buffer_hit_rate(),
        );
        overhead_rows.push(format!(
            concat!(
                "    {{\"technique\": {:?}, \"bandwidth_overhead_percent\": {:.6}, ",
                "\"mitigation_cycles\": {}, \"row_buffer_hit_rate\": {:.6}}}"
            ),
            technique.name(),
            metrics.bandwidth_overhead_percent(),
            metrics.mitigation_cycles(),
            metrics.row_buffer_hit_rate(),
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"backend_tiers\",\n",
            "  \"campaign\": {{\"devices\": {}, \"cohorts\": ",
            "[\"screen-cra\", \"screen-para\", \"screen-lipromi\"], \"reps\": {}}},\n",
            "  \"events\": {},\n",
            "  \"sim\": {{\"exact_s\": {:.6}, \"fast_s\": {:.6}, \"cycle_s\": {:.6}}},\n",
            "  \"fast_speedup\": {:.3},\n",
            "  \"end_to_end\": {{\"exact_s\": {:.6}, \"fast_s\": {:.6}, \"speedup\": {:.3}}},\n",
            "  \"cycle_overhead\": [\n{}\n  ]\n}}\n"
        ),
        devices,
        reps,
        events,
        sim[0],
        sim[1],
        sim[2],
        fast_speedup,
        end_to_end[0],
        end_to_end[1],
        end_to_end_speedup,
        overhead_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backend.json");
    std::fs::write(path, json).expect("write BENCH_backend.json");
    println!("backend_tiers: wrote {path}");
}

criterion_group!(benches, backend_tiers);
criterion_main!(benches);
