//! Table II regenerator + hardware-model benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::DramGeneration;
use rh_harness::experiments::table2;
use rh_hwmodel::{area, fsm_cycles, HwParams, Technique};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== Table II — FSM clock cycles (model vs paper: exact) ===");
    println!("{}", table2::render(&table2::run()));

    let params = HwParams::paper();
    c.bench_function("table2/fsm_cycles_all", |b| {
        b.iter(|| {
            for t in Technique::TABLE3 {
                black_box(fsm_cycles(black_box(t), black_box(&params)));
            }
        })
    });

    c.bench_function("table2/area_model_all", |b| {
        b.iter(|| {
            for t in Technique::TABLE3 {
                black_box(area::area(t, &params, DramGeneration::Ddr4).total());
                black_box(area::area(t, &params, DramGeneration::Ddr3).total());
            }
        })
    });
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
