//! Lane-kernel decision-layer throughput: the run-grouped `on_batch`
//! kernels vs. the default per-event fan-out, writing `BENCH_simd.json`
//! at the workspace root.
//!
//! The fan-out arm wraps a `Box<dyn Mitigation>` (`techniques::build`)
//! in [`FanOut`], which delegates everything *except* `on_batch` — so
//! the trait's default implementation runs: one `sink.record` plus one
//! *virtual* `on_activate` call per event, exactly the delivery the
//! batched engine used before the lane-kernel refactor.  The kernel arm
//! is the production [`rh_baselines::AnyMitigation`] path:
//! run-length-grouped per-bank column sweeps, block RNG draws, hoisted
//! integer gate thresholds, branchless counter updates.
//!
//! Both arms consume identical RNG streams and emit identical actions
//! (`tests/batch_pipeline.rs` pins bit-identity), so the delta is pure
//! decision-layer cost: per-event virtual dispatch, per-bank state
//! re-lookup, and word-at-a-time RNG refills, all hoisted or batched
//! away by the kernels.
//!
//! The driver measures `on_batch` + tag drain + `on_refresh_interval`
//! over a prebuilt multi-interval [`EventBatch`] — no trace generation
//! or disturbance backend in the loop, so the ratio is the decision
//! layer's own.  `--quick` (or `--test`, or `RH_BENCH_QUICK`) shrinks
//! the run for CI.

use dram_sim::{BankId, RowAddr};
use mem_trace::{EventBatch, TraceEvent};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use rh_harness::{techniques, ExperimentScale, RunConfig};
use rh_hwmodel::Technique;
use std::hint::black_box;
use std::ops::Range;
use std::time::Instant;
use tivapromi::{ActionSink, Mitigation, MitigationAction};

/// Delegates every trait method except `on_batch`, so the default
/// per-event fan-out runs — each event paying a virtual `on_activate`
/// through the boxed technique: the pre-kernel batched delivery,
/// preserved as the benchmark baseline.
struct FanOut(Box<dyn Mitigation>);

impl Mitigation for FanOut {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        self.0.on_activate(bank, row, actions);
    }

    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>) {
        self.0.on_refresh_interval(actions);
    }

    fn storage_bits_per_bank(&self) -> u64 {
        self.0.storage_bits_per_bank()
    }
}

const BANKS: u32 = 8;

/// A paper-mix-shaped batch: per interval, bursts of bank-local traffic
/// (geometric-ish run lengths, so `bank_runs` sees realistic groups)
/// mixing hammered aggressors with a benign spread.
fn build_batch(intervals: usize, events_per_interval: usize, rows_per_bank: u32) -> EventBatch {
    let mut rng = StdRng::seed_from_u64(42);
    let mut batch = EventBatch::new();
    let mut events = Vec::with_capacity(events_per_interval);
    for _ in 0..intervals {
        events.clear();
        let mut bank = 0u32;
        while events.len() < events_per_interval {
            let run = 1 + rng.random_range(0..24u32) as usize;
            for _ in 0..run.min(events_per_interval - events.len()) {
                let row = if rng.random_range(0..4u32) == 0 {
                    RowAddr(30_000 + rng.random_range(0..3u32))
                } else {
                    RowAddr(rng.random_range(0..rows_per_bank))
                };
                events.push(TraceEvent::benign(BankId(bank), row));
            }
            bank = (bank + 1) % BANKS;
        }
        batch.push_interval(&events);
    }
    batch
}

/// One full pass over the batch: per interval, `on_batch`, a tag-order
/// drain (as the engine replays actions), then the interval turnover.
fn drive<M: Mitigation + ?Sized>(
    mitigation: &mut M,
    batch: &EventBatch,
    segments: &[Range<usize>],
    sink: &mut ActionSink,
    actions: &mut Vec<MitigationAction>,
) -> u64 {
    let mut triggers = 0u64;
    for segment in segments {
        sink.reset();
        mitigation.on_batch(batch, segment.clone(), sink);
        // Engine-style replay: jump from action point to action point
        // (`peek_tag`), never touching action-free events.
        while let Some(tag) = sink.peek_tag() {
            while let Some(action) = sink.next_for(tag) {
                black_box(action);
                triggers += 1;
            }
        }
        mitigation.on_refresh_interval(actions);
        triggers += u64::try_from(actions.len()).expect("action count fits u64");
        actions.clear();
    }
    triggers
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("RH_BENCH_QUICK").is_some();
    let intervals = if quick { 48 } else { 256 };
    let events_per_interval = 800;
    let reps = if quick { 3 } else { 7 };

    let scale = ExperimentScale {
        windows: 1,
        banks: BANKS,
        seeds: 1,
    };
    let config = RunConfig::paper(&scale);
    let batch = build_batch(intervals, events_per_interval, config.geometry.rows_per_bank());
    let segments: Vec<Range<usize>> = (0..intervals).map(|k| batch.segment(k)).collect();
    let total_events = u64::try_from(intervals * events_per_interval).expect("event count fits");

    let min_secs = |run: &mut dyn FnMut() -> u64| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut triggers = 0;
        for _ in 0..reps {
            let start = Instant::now();
            triggers = run();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, triggers)
    };

    let mut rows = Vec::new();
    let mut fanout_total = 0.0;
    let mut kernel_total = 0.0;
    let mut slower: Vec<&str> = Vec::new();
    for technique in Technique::TABLE3 {
        let mut sink = ActionSink::with_capacity(4096);
        let mut actions = Vec::with_capacity(4096);
        let (fanout_s, fanout_triggers) = min_secs(&mut || {
            let mut mitigation = FanOut(techniques::build(technique, &config, 1));
            drive(&mut mitigation, &batch, &segments, &mut sink, &mut actions)
        });
        let (kernel_s, kernel_triggers) = min_secs(&mut || {
            let mut mitigation = techniques::build_any(technique, &config, 1);
            drive(&mut mitigation, &batch, &segments, &mut sink, &mut actions)
        });
        assert_eq!(
            fanout_triggers, kernel_triggers,
            "{technique:?}: arms must emit identical actions"
        );
        let speedup = fanout_s / kernel_s;
        if speedup < 1.0 {
            slower.push(technique.name());
        }
        println!(
            "simd/{:<10} fan-out {:>8.2} ms  kernel {:>8.2} ms  {:>5.2}x  ({} triggers)",
            technique.name(),
            fanout_s * 1e3,
            kernel_s * 1e3,
            speedup,
            kernel_triggers
        );
        fanout_total += fanout_s;
        kernel_total += kernel_s;
        rows.push(format!(
            concat!(
                "    {{\"technique\": {:?}, \"fanout_s\": {:.6}, ",
                "\"kernel_s\": {:.6}, \"speedup\": {:.3}}}"
            ),
            technique.name(),
            fanout_s,
            kernel_s,
            speedup
        ));
    }
    let aggregate = fanout_total / kernel_total;
    println!(
        "simd/all        fan-out {:>8.2} ms  kernel {:>8.2} ms  {:>5.2}x aggregate",
        fanout_total * 1e3,
        kernel_total * 1e3,
        aggregate
    );
    if !slower.is_empty() {
        println!("simd: slower-than-fan-out techniques: {slower:?}");
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"lane_kernels_vs_fanout\",\n  \"scale\": ",
            "{{\"intervals\": {}, \"events_per_interval\": {}, \"banks\": {}, \"reps\": {}}},\n",
            "  \"events\": {},\n  \"fanout_total_s\": {:.6},\n  \"kernel_total_s\": {:.6},\n",
            "  \"aggregate_speedup\": {:.3},\n  \"techniques\": [\n{}\n  ]\n}}\n"
        ),
        intervals,
        events_per_interval,
        BANKS,
        reps,
        total_events,
        fanout_total,
        kernel_total,
        aggregate,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd.json");
    std::fs::write(path, json).expect("write BENCH_simd.json");
    println!("simd: wrote {path}");
}
