//! Per-activation mitigation cost: the simulator-side analogue of the
//! paper's cycle budget — how expensive is `on_activate` for each of
//! the nine techniques?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::{BankId, RowAddr};
use rand::{RngExt, SeedableRng};
use rh_bench::bench_scale;
use rh_harness::{techniques, RunConfig};
use rh_hwmodel::Technique;
use std::hint::black_box;

fn per_activation_cost(c: &mut Criterion) {
    let config = RunConfig::paper(&bench_scale());
    let mut group = c.benchmark_group("on_activate");
    group.throughput(Throughput::Elements(1));

    // A pre-generated mixed address pattern: a few hot rows + noise.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rows: Vec<RowAddr> = (0..4096)
        .map(|i| {
            if i % 4 == 0 {
                RowAddr(30_000) // hammered row
            } else {
                RowAddr(rng.random_range(0..config.geometry.rows_per_bank()))
            }
        })
        .collect();

    for technique in Technique::TABLE3 {
        group.bench_function(technique.name(), |b| {
            let mut mitigation = techniques::build(technique, &config, 1);
            let mut actions = Vec::new();
            let mut cursor = 0usize;
            b.iter(|| {
                let row = rows[cursor & 4095];
                cursor = cursor.wrapping_add(1);
                mitigation.on_activate(BankId(0), black_box(row), &mut actions);
                actions.clear();
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("on_refresh_interval");
    for technique in [Technique::CaPromi, Technique::TwiCe, Technique::ProHit] {
        group.bench_function(technique.name(), |b| {
            let mut mitigation = techniques::build(technique, &config, 1);
            let mut actions = Vec::new();
            // Populate tables realistically.
            for i in 0..64u32 {
                mitigation.on_activate(BankId(0), RowAddr(1000 + i * 3), &mut actions);
            }
            actions.clear();
            b.iter(|| {
                mitigation.on_refresh_interval(&mut actions);
                actions.clear();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, per_activation_cost);
criterion_main!(benches);
