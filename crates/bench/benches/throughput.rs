//! Per-activation mitigation cost — the simulator-side analogue of the
//! paper's cycle budget — plus the bank-sharded engine's multi-core
//! scaling: a full 8-bank run, sequential vs. sharded at 1/2/4 workers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::{BankId, RowAddr};
use rand::{RngExt, SeedableRng};
use rh_bench::bench_scale;
use rh_harness::{engine, scenario, techniques, ExperimentScale, Parallelism, RunConfig};
use rh_hwmodel::Technique;
use std::hint::black_box;

/// Full-run scaling of the sharded engine on an 8-bank mixed trace.
///
/// Speedup over the `sequential` baseline tracks physical core count:
/// on a single-core host all variants are within noise of each other
/// (the dispatcher adds no measurable overhead), while with 4+ cores the
/// 4-worker variant approaches 4×.  Sharding is bit-identical at every
/// worker count (see `tests/determinism.rs`), so this is a pure
/// wall-clock knob.
fn sharded_run_scaling(c: &mut Criterion) {
    let scale = ExperimentScale {
        windows: 2,
        banks: 8,
        seeds: 1,
    };
    let technique = Technique::LoLiPromi;
    let mut group = c.benchmark_group("sharded_run_8_banks");
    group.sample_size(10);

    let variants: [(&str, Parallelism); 4] = [
        ("sequential", Parallelism::sequential()),
        ("workers/1", Parallelism::with_workers(1)),
        ("workers/2", Parallelism::with_workers(2)),
        ("workers/4", Parallelism::with_workers(4)),
    ];
    for (name, parallelism) in variants {
        let config = RunConfig::paper(&scale).with_parallelism(parallelism);
        group.bench_function(name, |b| {
            b.iter(|| {
                let trace = scenario::paper_mix(&config, 1);
                let metrics = if parallelism.shard_by_bank {
                    engine::run_with(
                        trace,
                        &|| techniques::build(technique, &config, 1),
                        &config,
                    )
                } else {
                    let mut mitigation = techniques::build(technique, &config, 1);
                    engine::run(trace, mitigation.as_mut(), &config)
                };
                black_box(metrics)
            })
        });
    }
    group.finish();
}

fn per_activation_cost(c: &mut Criterion) {
    let config = RunConfig::paper(&bench_scale());
    let mut group = c.benchmark_group("on_activate");
    group.throughput(Throughput::Elements(1));

    // A pre-generated mixed address pattern: a few hot rows + noise.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rows: Vec<RowAddr> = (0..4096)
        .map(|i| {
            if i % 4 == 0 {
                RowAddr(30_000) // hammered row
            } else {
                RowAddr(rng.random_range(0..config.geometry.rows_per_bank()))
            }
        })
        .collect();

    for technique in Technique::TABLE3 {
        group.bench_function(technique.name(), |b| {
            let mut mitigation = techniques::build(technique, &config, 1);
            let mut actions = Vec::new();
            let mut cursor = 0usize;
            b.iter(|| {
                let row = rows[cursor & 4095];
                cursor = cursor.wrapping_add(1);
                mitigation.on_activate(BankId(0), black_box(row), &mut actions);
                actions.clear();
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("on_refresh_interval");
    for technique in [Technique::CaPromi, Technique::TwiCe, Technique::ProHit] {
        group.bench_function(technique.name(), |b| {
            let mut mitigation = techniques::build(technique, &config, 1);
            let mut actions = Vec::new();
            // Populate tables realistically.
            for i in 0..64u32 {
                mitigation.on_activate(BankId(0), RowAddr(1000 + i * 3), &mut actions);
            }
            actions.clear();
            b.iter(|| {
                mitigation.on_refresh_interval(&mut actions);
                actions.clear();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, per_activation_cost, sharded_run_scaling);
criterion_main!(benches);
