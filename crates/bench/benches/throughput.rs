//! Per-activation mitigation cost — the simulator-side analogue of the
//! paper's cycle budget — plus the bank-sharded engine's multi-core
//! scaling (a full 8-bank run, sequential vs. sharded at 1/2/4 workers)
//! and the batched-vs-scalar pipeline comparison, which writes
//! `BENCH_batch.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::{BankId, RowAddr};
use rand::{RngExt, SeedableRng};
use rh_bench::bench_scale;
use rh_harness::{
    engine, scenario, techniques, ExperimentScale, NullObserver, Parallelism, RunConfig,
};
use rh_hwmodel::Technique;
use std::hint::black_box;
use std::time::Instant;

/// Batched pipeline vs. the scalar reference loop: every Table III
/// technique on a full 8-bank mixed run, min-of-k wall times.
///
/// The scalar arm is the engine exactly as it was before the batched
/// refactor — one `Box<dyn Mitigation>` vtable call per activation
/// ([`engine::run_scalar`]).  The batched arm is the current production
/// path: chunked trace delivery into an [`mem_trace::EventBatch`] and
/// one [`rh_baselines::AnyMitigation`] dispatch per interval segment
/// ([`engine::run_observed`]).  Both compute bit-identical metrics
/// (`tests/batch_pipeline.rs`), so the delta is pure dispatch and
/// delivery overhead.
///
/// Results go to `BENCH_batch.json`; `--quick` (or `--test`, or the
/// `RH_BENCH_QUICK` environment variable) shrinks the run for CI.
fn batched_vs_scalar(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
        || std::env::var_os("RH_BENCH_QUICK").is_some();
    let scale = ExperimentScale {
        windows: if quick { 1 } else { 2 },
        banks: 8,
        seeds: 1,
    };
    let reps = if quick { 2 } else { 5 };
    let config = RunConfig::paper(&scale).with_parallelism(Parallelism::sequential());

    let min_secs = |run: &mut dyn FnMut() -> u64| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut events = 0;
        for _ in 0..reps {
            let start = Instant::now();
            events = run();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, events)
    };

    let mut rows = Vec::new();
    let mut scalar_total = 0.0;
    let mut batched_total = 0.0;
    for technique in Technique::TABLE3 {
        let (scalar_s, events) = min_secs(&mut || {
            let trace = scenario::paper_mix(&config, 1);
            let mut mitigation = techniques::build(technique, &config, 1);
            black_box(engine::run_scalar(trace, mitigation.as_mut(), &config)).workload_activations
        });
        let (batched_s, _) = min_secs(&mut || {
            let trace = scenario::paper_mix(&config, 1);
            let mut mitigation = techniques::build_any(technique, &config, 1);
            black_box(engine::run_observed(
                trace,
                &mut mitigation,
                &config,
                &mut NullObserver,
            ))
            .workload_activations
        });
        let speedup = (scalar_s / batched_s - 1.0) * 100.0;
        println!(
            "batch_vs_scalar/{:<10} scalar {:>8.2} ms  batched {:>8.2} ms  {:+.1}%",
            technique.name(),
            scalar_s * 1e3,
            batched_s * 1e3,
            speedup
        );
        scalar_total += scalar_s;
        batched_total += batched_s;
        rows.push(format!(
            concat!(
                "    {{\"technique\": {:?}, \"events\": {}, \"scalar_s\": {:.6}, ",
                "\"batched_s\": {:.6}, \"speedup_percent\": {:.2}}}"
            ),
            technique.name(),
            events,
            scalar_s,
            batched_s,
            speedup
        ));
    }
    let overall = (scalar_total / batched_total - 1.0) * 100.0;
    println!(
        "batch_vs_scalar/all        scalar {:>8.2} ms  batched {:>8.2} ms  {:+.1}%",
        scalar_total * 1e3,
        batched_total * 1e3,
        overall
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"batched_vs_scalar\",\n  \"scale\": ",
            "{{\"windows\": {}, \"banks\": {}, \"reps\": {}}},\n",
            "  \"scalar_total_s\": {:.6},\n  \"batched_total_s\": {:.6},\n",
            "  \"speedup_percent\": {:.2},\n  \"techniques\": [\n{}\n  ]\n}}\n"
        ),
        scale.windows,
        scale.banks,
        reps,
        scalar_total,
        batched_total,
        overall,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, json).expect("write BENCH_batch.json");
    println!("batch_vs_scalar: wrote {path}");
}

/// Full-run scaling of the sharded engine on an 8-bank mixed trace.
///
/// Speedup over the `sequential` baseline tracks physical core count:
/// on a single-core host all variants are within noise of each other
/// (the dispatcher adds no measurable overhead), while with 4+ cores the
/// 4-worker variant approaches 4×.  Sharding is bit-identical at every
/// worker count (see `tests/determinism.rs`), so this is a pure
/// wall-clock knob.
fn sharded_run_scaling(c: &mut Criterion) {
    let scale = ExperimentScale {
        windows: 2,
        banks: 8,
        seeds: 1,
    };
    let technique = Technique::LoLiPromi;
    let mut group = c.benchmark_group("sharded_run_8_banks");
    group.sample_size(10);

    let variants: [(&str, Parallelism); 4] = [
        ("sequential", Parallelism::sequential()),
        ("workers/1", Parallelism::with_workers(1)),
        ("workers/2", Parallelism::with_workers(2)),
        ("workers/4", Parallelism::with_workers(4)),
    ];
    for (name, parallelism) in variants {
        let config = RunConfig::paper(&scale).with_parallelism(parallelism);
        group.bench_function(name, |b| {
            b.iter(|| {
                let trace = scenario::paper_mix(&config, 1);
                let metrics = if parallelism.shard_by_bank {
                    engine::run_sharded(
                        trace,
                        &|| techniques::build(technique, &config, 1),
                        &config,
                    )
                } else {
                    let mut mitigation = techniques::build(technique, &config, 1);
                    engine::run_observed(trace, mitigation.as_mut(), &config, &mut NullObserver)
                };
                black_box(metrics)
            })
        });
    }
    group.finish();
}

fn per_activation_cost(c: &mut Criterion) {
    let config = RunConfig::paper(&bench_scale());
    let mut group = c.benchmark_group("on_activate");
    group.throughput(Throughput::Elements(1));

    // A pre-generated mixed address pattern: a few hot rows + noise.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let rows: Vec<RowAddr> = (0..4096)
        .map(|i| {
            if i % 4 == 0 {
                RowAddr(30_000) // hammered row
            } else {
                RowAddr(rng.random_range(0..config.geometry.rows_per_bank()))
            }
        })
        .collect();

    for technique in Technique::TABLE3 {
        group.bench_function(technique.name(), |b| {
            let mut mitigation = techniques::build(technique, &config, 1);
            let mut actions = Vec::new();
            let mut cursor = 0usize;
            b.iter(|| {
                let row = rows[cursor & 4095];
                cursor = cursor.wrapping_add(1);
                mitigation.on_activate(BankId(0), black_box(row), &mut actions);
                actions.clear();
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("on_refresh_interval");
    for technique in [Technique::CaPromi, Technique::TwiCe, Technique::ProHit] {
        group.bench_function(technique.name(), |b| {
            let mut mitigation = techniques::build(technique, &config, 1);
            let mut actions = Vec::new();
            // Populate tables realistically.
            for i in 0..64u32 {
                mitigation.on_activate(BankId(0), RowAddr(1000 + i * 3), &mut actions);
            }
            actions.clear();
            b.iter(|| {
                mitigation.on_refresh_interval(&mut actions);
                actions.clear();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    per_activation_cost,
    sharded_run_scaling,
    batched_vs_scalar
);
criterion_main!(benches);
