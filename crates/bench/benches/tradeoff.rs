//! Fig. 4 regenerator + full-engine run benchmarks.
//!
//! The printed series uses 2 windows × 1 bank × 2 seeds; run
//! `cargo run --release --bin fig4_tradeoff -- paper` (or `full`) for
//! the evaluation scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rh_bench::{bench_scale, print_scale};
use rh_harness::experiments::fig4;
use rh_harness::RunConfig;
use rh_hwmodel::Technique;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== Fig. 4 — table size vs activation overhead (reduced scale) ===");
    let points = fig4::run(&print_scale());
    println!("{}", fig4::render(&points));
    for (desc, ok) in fig4::shape_checks(&points) {
        println!("[{}] {desc}", if ok { "ok" } else { "MISS" });
    }
    println!();

    let config = RunConfig::paper(&bench_scale());
    let mut group = c.benchmark_group("fig4_run_one_window");
    group.sample_size(10);
    for technique in [
        Technique::Para,
        Technique::TwiCe,
        Technique::LoLiPromi,
        Technique::CaPromi,
    ] {
        group.bench_function(technique.name(), |b| {
            b.iter(|| black_box(fig4::run_one(technique, &config, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
