//! Design-choice ablation regenerator + data-structure micro-benches.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::RowAddr;
use rand::SeedableRng;
use rh_bench::bench_scale;
use rh_harness::experiments::ablation;
use std::hint::black_box;
use tivapromi::{linear_weight, log_weight, CounterTable, HistoryTable};

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== Ablations (reduced scale) ===");
    let scale = bench_scale();
    let mut results = ablation::history_sweep(&scale);
    results.extend(ablation::lock_threshold_sweep(&scale));
    println!("{}", ablation::render(&results));

    c.bench_function("history_table/lookup_miss_32", |b| {
        let mut t = HistoryTable::new(32);
        for i in 0..32u32 {
            t.record(RowAddr(i * 7), i);
        }
        b.iter(|| black_box(t.lookup(black_box(RowAddr(40_000)))))
    });

    c.bench_function("history_table/record_evict", |b| {
        let mut t = HistoryTable::new(32);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(t.record(RowAddr(i % 4096), i % 8192))
        })
    });

    c.bench_function("counter_table/observe_64", |b| {
        let mut t = CounterTable::new(64, 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(t.observe(RowAddr(i % 96), None, &mut rng))
        })
    });

    c.bench_function("weights/linear_plus_log", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 8192;
            let w = linear_weight(black_box(i), black_box(8191 - i), 8192);
            black_box(log_weight(w))
        })
    });
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
