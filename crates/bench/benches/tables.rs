//! Table I regenerator + configuration-path benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use rh_harness::experiments::table1;
use rh_harness::{ExperimentScale, RunConfig};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    // Regenerate Table I (pure configuration — full scale is free).
    println!("\n=== Table I — simulated system specifications ===");
    println!("{}", table1::render(&ExperimentScale::full()));

    c.bench_function("table1/render", |b| {
        let scale = ExperimentScale::full();
        b.iter(|| black_box(table1::render(black_box(&scale))))
    });

    c.bench_function("table1/build_device", |b| {
        let config = RunConfig::paper(&ExperimentScale::quick());
        b.iter(|| black_box(config.build_device()))
    });
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
