//! §IV flooding-point regenerator + flooding-run benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use rh_bench::{bench_scale, print_scale};
use rh_harness::experiments::flooding;
use rh_harness::{engine, scenario, techniques, NullObserver, RunConfig};
use rh_hwmodel::Technique;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    println!("\n=== §IV flooding first-trigger points (reduced scale) ===");
    let mut scale = print_scale();
    scale.seeds = 4;
    println!("{}", flooding::render(&flooding::run(&scale)));

    let config = RunConfig::paper(&bench_scale());
    let mut group = c.benchmark_group("flooding_one_window");
    group.sample_size(10);
    for technique in [Technique::LiPromi, Technique::CaPromi] {
        group.bench_function(technique.name(), |b| {
            b.iter(|| {
                let trace = scenario::flooding(&config, flooding::FLOODED_ROW);
                let mut mitigation = techniques::build(technique, &config, 1);
                black_box(engine::run_observed(
                    trace,
                    mitigation.as_mut(),
                    &config,
                    &mut NullObserver,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
