//! # rh-bench — benchmark harness
//!
//! Criterion benches, one per paper table/figure plus a per-event
//! throughput bench and the ablation sweeps.  Each bench first *prints*
//! the regenerated table/series (at a small, documented scale — the
//! experiment binaries in `rh-harness` regenerate them at full scale)
//! and then measures the hot paths that produce it.
//!
//! | Bench | Regenerates | Measures |
//! |---|---|---|
//! | `tables` | Table I | configuration & rendering |
//! | `hw_cycles` | Table II | FSM cycle/area model evaluation |
//! | `tradeoff` | Fig. 4 series | full engine run per technique |
//! | `comparison` | Table III | LUT model across techniques |
//! | `flooding` | §IV flooding points | flooding run |
//! | `throughput` | — | per-activation mitigation cost (all 9) |
//! | `ablation` | design-choice sweeps | table data-structure ops |

use rh_harness::ExperimentScale;

/// The scale used inside benches: small enough for Criterion iteration,
/// large enough to exercise every code path (1 window, 1 bank, 1 seed).
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        windows: 1,
        banks: 1,
        seeds: 1,
    }
}

/// A slightly larger scale for the printed tables (2 windows, 2 seeds).
pub fn print_scale() -> ExperimentScale {
    ExperimentScale {
        windows: 2,
        banks: 1,
        seeds: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_small() {
        assert!(bench_scale().windows <= print_scale().windows);
        assert_eq!(bench_scale().seeds, 1);
    }
}
