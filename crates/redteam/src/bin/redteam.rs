//! Security-frontier search CLI.
//!
//! ```text
//! redteam [--quick|--thorough] [--backend TIER] [seed] [output-dir]
//! ```
//!
//! Searches the security frontier of all nine Table III techniques,
//! prints the frontier table, and writes the JSON report (with a
//! round-trip self-check) to `<output-dir>/redteam-frontier.json`
//! (default `target/redteam`).

use dram_sim::BackendSpec;
use rh_redteam::{run_search, FrontierReport, SearchConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: redteam [--quick|--thorough] [--backend exact|fast|cycle] [seed] [output-dir]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut seed = 7u64;
    let mut out_dir = PathBuf::from("target/redteam");
    let mut thorough = false;
    let mut backend = BackendSpec::Exact;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "quick" => thorough = false,
            "--thorough" | "thorough" => thorough = true,
            "--backend" => match args.next().map(|v| v.parse()) {
                Some(Ok(b)) => backend = b,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return usage();
                }
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other => {
                positional += 1;
                match positional {
                    1 => match other.parse() {
                        Ok(s) => seed = s,
                        Err(_) => {
                            eprintln!("not a seed: {other}");
                            return usage();
                        }
                    },
                    2 => out_dir = PathBuf::from(other),
                    _ => return usage(),
                }
            }
        }
    }

    let mut search = SearchConfig::quick(seed);
    search.base.backend = backend;
    if thorough {
        search.rounds = 5;
        search.population = 24;
        search.survivors = 5;
        search.max_windows = 4;
    }
    println!(
        "red-team frontier search: seed {seed}, {} rounds, flip threshold {}, {} tier, target {} flip(s)",
        search.rounds, search.base.flip_threshold, search.base.backend, search.flip_target
    );

    let report = run_search(&search);
    println!("{}", report.render());

    for result in &report.results {
        if let (Some(adaptive), Some(static_ramp)) =
            (&result.frontier_adaptive, &result.frontier_static)
        {
            if adaptive.budget < static_ramp.budget {
                println!(
                    "{}: adaptive {} breaches at budget {} vs static ramp {} ({:.0}% cheaper)",
                    result.technique,
                    adaptive.candidate.label(),
                    adaptive.budget,
                    static_ramp.budget,
                    100.0 * (1.0 - adaptive.budget as f64 / static_ramp.budget as f64)
                );
            }
        }
    }

    let json = report.to_json();
    match FrontierReport::from_json(&json) {
        Ok(back) if back == report => {}
        Ok(_) => {
            eprintln!("self-check failed: JSON round-trip changed the report");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("self-check failed: {e:?}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join("redteam-frontier.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} bytes, round-trip checked)",
        path.display(),
        json.len()
    );
    ExitCode::SUCCESS
}
