//! Security metrics and the frontier report (table + JSON).

use crate::candidate::Candidate;
use rh_harness::TextTable;
use serde::{Deserialize, Serialize};

/// The measured outcome of one candidate against one technique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The attack configuration that was run.
    pub candidate: Candidate,
    /// Attacker activations actually spent over the run (the budget the
    /// frontier minimizes).
    pub budget: u64,
    /// Bit flips caused.
    pub flips: usize,
    /// Whether the flip target was reached.
    pub achieved: bool,
    /// Bank-local activation count at the first flip, if any.
    pub time_to_first_flip: Option<u64>,
    /// Mitigation trigger events the attack drew.
    pub triggers: u64,
    /// Share of the attacker budget that drew no true-positive
    /// response, in percent.
    pub evasion_percent: f64,
    /// Flips per million attacker activations.
    pub flips_per_mega_act: f64,
    /// Peak disturbance as a fraction of the flip threshold.
    pub attack_margin: f64,
}

/// The frontier search outcome for one technique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueFrontier {
    /// Technique name (Table III).
    pub technique: String,
    /// The minimum-budget achiever over every shape, if any achieved
    /// the flip target.
    pub frontier: Option<Evaluation>,
    /// The minimum-budget achiever restricted to the paper's static
    /// ramp attacker.
    pub frontier_static: Option<Evaluation>,
    /// The minimum-budget achiever restricted to adaptive shapes.
    pub frontier_adaptive: Option<Evaluation>,
    /// Distinct candidates evaluated (cache misses).
    pub evaluations: u64,
    /// Cache hits over the whole search.
    pub cache_hits: u64,
}

/// The full report over every technique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierReport {
    /// Flip threshold of the search configuration.
    pub flip_threshold: u32,
    /// Flips a candidate had to cause to achieve.
    pub flip_target: usize,
    /// The search seed the whole report is a pure function of.
    pub search_seed: u64,
    /// Search rounds that were run.
    pub rounds: usize,
    /// One frontier per technique, in Table III order.
    pub results: Vec<TechniqueFrontier>,
}

impl FrontierReport {
    /// The report as canonical JSON (byte-identical for identical
    /// searches, independent of worker count).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parses a report back from [`FrontierReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Renders the frontier table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "technique",
            "frontier attack",
            "budget",
            "first flip @ act",
            "evasion",
            "static-ramp budget",
            "evals",
            "cache hits",
        ]);
        for result in &self.results {
            let (attack, budget, first_flip, evasion) = match &result.frontier {
                Some(e) => (
                    e.candidate.label(),
                    e.budget.to_string(),
                    e.time_to_first_flip
                        .map_or_else(|| "-".into(), |a| a.to_string()),
                    format!("{:.1}%", e.evasion_percent),
                ),
                None => ("(not breached)".into(), "-".into(), "-".into(), "-".into()),
            };
            table.row(vec![
                result.technique.clone(),
                attack,
                budget,
                first_flip,
                evasion,
                result
                    .frontier_static
                    .as_ref()
                    .map_or_else(|| "-".into(), |e| e.budget.to_string()),
                result.evaluations.to_string(),
                result.cache_hits.to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::AttackShape;

    fn evaluation() -> Evaluation {
        Evaluation {
            candidate: Candidate {
                shape: AttackShape::Burst {
                    pairs: 1,
                    duty_16ths: 8,
                    phase_16ths: 4,
                },
                acts_per_interval: 32,
                windows: 1,
            },
            budget: 2048,
            flips: 2,
            achieved: true,
            time_to_first_flip: Some(3100),
            triggers: 12,
            evasion_percent: 99.4,
            flips_per_mega_act: 976.5,
            attack_margin: 1.2,
        }
    }

    fn report() -> FrontierReport {
        FrontierReport {
            flip_threshold: 2048,
            flip_target: 1,
            search_seed: 7,
            rounds: 3,
            results: vec![
                TechniqueFrontier {
                    technique: "PARA".into(),
                    frontier: Some(evaluation()),
                    frontier_static: Some(Evaluation {
                        budget: 4096,
                        candidate: Candidate {
                            shape: AttackShape::StaticRamp,
                            acts_per_interval: 16,
                            windows: 2,
                        },
                        ..evaluation()
                    }),
                    frontier_adaptive: Some(evaluation()),
                    evaluations: 40,
                    cache_hits: 9,
                },
                TechniqueFrontier {
                    technique: "TWiCe".into(),
                    frontier: None,
                    frontier_static: None,
                    frontier_adaptive: None,
                    evaluations: 40,
                    cache_hits: 9,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = report();
        let back = FrontierReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn table_shows_frontier_and_unbreached_rows() {
        let text = report().render();
        assert!(text.contains("PARA"));
        assert!(text.contains("burst a32 w1"));
        assert!(text.contains("2048"));
        assert!(text.contains("4096"));
        assert!(text.contains("(not breached)"));
        assert!(text.contains("cache hits"));
    }
}
