//! The security-frontier search driver.
//!
//! For each mitigation technique the driver synthesizes attack
//! candidates and looks for the *security frontier*: the minimum
//! attacker budget (activations actually spent) that reaches the flip
//! target, and the attack shape that achieves it.  The search is a
//! budgeted two-stage scheduler:
//!
//! 1. **Exploration** — a deterministic seed grid over every shape
//!    family, topped up each round with seeded-random candidates drawn
//!    on the coordinator thread only;
//! 2. **Refinement** (successive halving) — the best achievers shrink
//!    their budget knobs (halve activations, duration, duty cycle),
//!    the best non-achievers grow theirs, and the survivors re-enter
//!    the pool.
//!
//! Candidate evaluations fan out across a worker pool through the
//! order-preserving [`rh_harness::parallel::map_workers`]; each
//! evaluation itself runs the engine sequentially.  Results are
//! content-addressed in an in-memory cache keyed on
//! `(technique, attack-config hash, seed)`, so survivors re-entering
//! the pool — and any shape the random sampler re-draws — cost
//! nothing.  All randomness is drawn on the coordinator, every ranking
//! uses a total order, and the cache is consulted before dispatch:
//! the whole search, including its cache-hit counters, is a pure
//! function of the search seed, independent of the worker count.

use crate::candidate::{build_attack, build_attack_on, AttackShape, Candidate};
use crate::report::{Evaluation, FrontierReport, TechniqueFrontier};
use dram_sim::RowAddr;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rh_harness::{parallel, Parallelism, RunConfig, Runner, TechniqueSpec};
use rh_hwmodel::Technique;
use std::collections::{BTreeMap, HashSet};

/// Flip threshold used by the quick red-team configuration: the
/// weakest-cell scenario (the paper's 139 K threshold scaled to the
/// 1/64 search geometry's refresh window, further weakened to the
/// tail of the cell distribution) at which the search can resolve the
/// frontier in seconds.
pub const QUICK_FLIP_THRESHOLD: u32 = 2048;

/// Everything that parameterizes one frontier search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Base run configuration: geometry, timing, flip threshold.  The
    /// per-candidate window count overrides `base.windows`, and every
    /// evaluation forces sequential engine parallelism (the search
    /// parallelizes across candidates instead).
    pub base: RunConfig,
    /// Bit flips a candidate must cause to count as an achiever.
    pub flip_target: usize,
    /// Seed for candidate sampling and for every evaluation run.
    pub seed: u64,
    /// Search rounds (exploration + refinement each round).
    pub rounds: usize,
    /// Random candidates added per round.
    pub population: usize,
    /// Achievers and non-achievers kept per round for refinement.
    pub survivors: usize,
    /// Worker threads for candidate fan-out (`0` = auto).
    pub workers: usize,
    /// Ceiling for sampled activations per interval.
    pub max_acts: u32,
    /// Ceiling for sampled attack duration in windows.
    pub max_windows: u64,
    /// When set, the objective is *targeted*: every shape is recentered
    /// on this row (see [`build_attack_on`]) and a candidate achieves
    /// only when the run's flip log shows **this row** flipping —
    /// collateral flips of other rows do not count.  `None` keeps the
    /// blind frontier objective (any `flip_target` flips anywhere).
    pub target_row: Option<RowAddr>,
}

impl SearchConfig {
    /// The quick-scale search: 1/64 geometry (1024 rows, 128 intervals
    /// per window), weakened flip threshold, a small budgeted search
    /// that resolves all nine techniques in seconds.
    pub fn quick(seed: u64) -> Self {
        let mut base = RunConfig::paper(&rh_harness::ExperimentScale::quick());
        base.geometry = dram_sim::Geometry::scaled_down(64);
        base.flip_threshold = QUICK_FLIP_THRESHOLD;
        SearchConfig {
            base,
            flip_target: 1,
            seed,
            rounds: 3,
            population: 10,
            survivors: 3,
            workers: 0,
            max_acts: 64,
            max_windows: 2,
            target_row: None,
        }
    }

    /// Returns a copy with a different candidate-fan-out worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy searching at a different flip threshold — the
    /// fleet layer probes each cohort's weak-cell tail this way.
    pub fn with_flip_threshold(mut self, flip_threshold: u32) -> Self {
        self.base.flip_threshold = flip_threshold;
        self
    }

    /// Returns a copy with the targeted objective aimed at `row` (the
    /// exploit subsystem's phase-3 campaigns).
    pub fn with_target_row(mut self, row: RowAddr) -> Self {
        self.target_row = Some(row);
        self
    }
}

/// FNV-1a over `bytes` (content-addressing for the result cache).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// The content-addressed cache key of one evaluation:
/// `(technique, attack-config hash, seed)`.
pub fn cache_key(technique: &str, candidate: &Candidate, seed: u64) -> u64 {
    let config = serde_json::to_string(candidate).expect("candidate serializes");
    fnv1a(format!("{technique}\u{1f}{config}\u{1f}{seed}").as_bytes())
}

/// Runs one candidate against one technique and measures it.
///
/// Under the blind objective `achieved` means `flip_target` flips
/// anywhere; under a [`SearchConfig::target_row`] it means the target
/// row itself flipped, and `time_to_first_flip` becomes the time to
/// *that* flip (in bank-local attacker activations, the same clock as
/// the blind metric).
pub fn evaluate(spec: TechniqueSpec, candidate: &Candidate, search: &SearchConfig) -> Evaluation {
    let mut config = search.base.clone();
    config.windows = candidate.windows;
    config.parallelism = Parallelism::sequential();
    let built = match search.target_row {
        Some(victim) => build_attack_on(candidate, &config, victim),
        None => build_attack(candidate, &config),
    };
    let runner = Runner::new(config).technique(spec).seed(search.seed);
    let metrics = match built.probe {
        Some(probe) => runner.observer(probe).run(built.trace),
        None => runner.run(built.trace),
    };
    let (achieved, time_to_first_flip) = match search.target_row {
        Some(victim) => {
            let hit = metrics.flip_log.iter().find(|f| f.row == victim);
            (hit.is_some(), hit.map(|f| f.bank_act))
        }
        None => (
            metrics.flips >= search.flip_target,
            metrics.time_to_first_flip,
        ),
    };
    Evaluation {
        candidate: *candidate,
        budget: metrics.aggressor_activations,
        flips: metrics.flips,
        achieved,
        time_to_first_flip,
        triggers: metrics.trigger_events,
        evasion_percent: metrics.evasion_percent(),
        flips_per_mega_act: metrics.flips_per_mega_act(),
        attack_margin: metrics.attack_margin(),
    }
}

/// The deterministic exploration grid: every shape family at a few
/// budget points.
fn seed_candidates(search: &SearchConfig) -> Vec<Candidate> {
    let shapes = [
        AttackShape::StaticRamp,
        AttackShape::DoubleSided,
        AttackShape::Decoy { decoys: 4 },
        AttackShape::ShiftedRamp { shift_16ths: 4 },
        AttackShape::Burst {
            pairs: 1,
            duty_16ths: 8,
            phase_16ths: 4,
        },
        AttackShape::AdaptiveDecoy { max_decoys: 4 },
    ];
    let mut out = Vec::new();
    for shape in shapes {
        for acts in [16, 32, search.max_acts] {
            for windows in [1, search.max_windows] {
                out.push(Candidate {
                    shape,
                    acts_per_interval: acts.clamp(1, search.max_acts),
                    windows: windows.clamp(1, search.max_windows),
                });
            }
        }
    }
    out
}

/// One random candidate, drawn entirely from `rng` (coordinator-only).
fn random_candidate(rng: &mut StdRng, search: &SearchConfig) -> Candidate {
    let shape = match rng.random_range(0u32..6) {
        0 => AttackShape::StaticRamp,
        1 => AttackShape::DoubleSided,
        2 => AttackShape::Decoy {
            decoys: rng.random_range(1u32..8),
        },
        3 => AttackShape::ShiftedRamp {
            shift_16ths: rng.random_range(1u32..16),
        },
        4 => AttackShape::Burst {
            pairs: rng.random_range(1u32..4),
            duty_16ths: rng.random_range(1u32..16),
            phase_16ths: rng.random_range(0u32..8),
        },
        _ => AttackShape::AdaptiveDecoy {
            max_decoys: rng.random_range(1u32..8),
        },
    };
    Candidate {
        shape,
        acts_per_interval: rng.random_range(1u32..=search.max_acts),
        windows: rng.random_range(1u64..=search.max_windows),
    }
}

/// Successive-halving refinement: achievers shrink their budget knobs,
/// non-achievers grow them.
fn refine(candidate: &Candidate, achieved: bool, search: &SearchConfig) -> Vec<Candidate> {
    let mut out = Vec::new();
    let c = *candidate;
    if achieved {
        out.push(Candidate {
            acts_per_interval: (c.acts_per_interval / 2).max(1),
            ..c
        });
        out.push(Candidate {
            acts_per_interval: (c.acts_per_interval * 3 / 4).max(1),
            ..c
        });
        out.push(Candidate {
            windows: (c.windows / 2).max(1),
            ..c
        });
        if let AttackShape::Burst {
            pairs,
            duty_16ths,
            phase_16ths,
        } = c.shape
        {
            out.push(Candidate {
                shape: AttackShape::Burst {
                    pairs,
                    duty_16ths: (duty_16ths / 2).max(1),
                    phase_16ths,
                },
                ..c
            });
        }
    } else {
        out.push(Candidate {
            acts_per_interval: (c.acts_per_interval * 2).min(search.max_acts),
            ..c
        });
        out.push(Candidate {
            windows: (c.windows * 2).min(search.max_windows),
            ..c
        });
        if let AttackShape::Burst {
            pairs,
            duty_16ths,
            phase_16ths,
        } = c.shape
        {
            out.push(Candidate {
                shape: AttackShape::Burst {
                    pairs,
                    duty_16ths: (duty_16ths * 2).min(16),
                    phase_16ths,
                },
                ..c
            });
        }
    }
    out
}

/// A total order for ranking achievers: budget, then time to first
/// flip, then the serialized candidate (an arbitrary but deterministic
/// final tie-break).
fn achiever_rank(e: &Evaluation) -> (u64, u64, String) {
    (
        e.budget,
        e.time_to_first_flip.unwrap_or(u64::MAX),
        serde_json::to_string(&e.candidate).expect("candidate serializes"),
    )
}

/// Searches the security frontier of one technique.
pub fn search_technique(spec: TechniqueSpec, search: &SearchConfig) -> TechniqueFrontier {
    // Keyed by content hash in a BTreeMap: every traversal of the
    // cache is in key order — structural, not hash-seeded — so no
    // ranking below depends on a sort for correctness of its *input*
    // order (rule D1).
    let mut cache: BTreeMap<u64, Evaluation> = BTreeMap::new();
    let mut cache_hits = 0u64;
    // `Display` renders the exact `.name()` bytes, so seeds and cache
    // keys derived from it are stable across the refactor.
    let technique = spec.to_string();
    let mut rng = StdRng::seed_from_u64(search.seed ^ fnv1a(technique.as_bytes()));
    let mut pool = seed_candidates(search);

    for _round in 0..search.rounds {
        for _ in 0..search.population {
            pool.push(random_candidate(&mut rng, search));
        }

        // Dedup the round's pool by cache key, preserving first-seen
        // order, and dispatch only the misses.  The hit counter is a
        // function of the pool alone, never of worker scheduling.
        let mut seen = HashSet::new();
        let mut batch = Vec::new();
        for candidate in pool.drain(..) {
            let key = cache_key(&technique, &candidate, search.seed);
            if !seen.insert(key) {
                continue;
            }
            if cache.contains_key(&key) {
                cache_hits += 1;
                continue;
            }
            batch.push((key, candidate));
        }
        let results = parallel::map_workers(batch, search.workers, |(key, candidate)| {
            (key, evaluate(spec, &candidate, search))
        });
        for (key, evaluation) in results {
            cache.insert(key, evaluation);
        }

        // Rank with total orders (cache iteration order never leaks
        // into the outcome).
        let mut achievers: Vec<&Evaluation> = cache.values().filter(|e| e.achieved).collect();
        achievers.sort_by_key(|e| achiever_rank(e));
        let mut rest: Vec<&Evaluation> = cache.values().filter(|e| !e.achieved).collect();
        rest.sort_by(|a, b| {
            b.attack_margin
                .total_cmp(&a.attack_margin)
                .then_with(|| achiever_rank(a).cmp(&achiever_rank(b)))
        });

        // Survivors re-enter the pool (guaranteed cache hits next
        // round) together with their refinements.  Besides the top
        // achievers overall, the cheapest achiever of *each* shape
        // family survives, so a family whose best sits behind a wall
        // of same-budget ties still gets successively halved.
        let mut family_best: HashSet<&str> = HashSet::new();
        let per_family: Vec<&&Evaluation> = achievers
            .iter()
            .filter(|e| family_best.insert(e.candidate.shape.family()))
            .collect();
        for e in achievers.iter().take(search.survivors).chain(per_family) {
            pool.push(e.candidate);
            pool.extend(refine(&e.candidate, true, search));
        }
        for e in rest.iter().take(search.survivors) {
            pool.push(e.candidate);
            pool.extend(refine(&e.candidate, false, search));
        }
    }

    let mut all: Vec<&Evaluation> = cache.values().filter(|e| e.achieved).collect();
    all.sort_by_key(|e| achiever_rank(e));
    let frontier = all.first().map(|e| (*e).clone());
    let frontier_static = all
        .iter()
        .find(|e| e.candidate.shape == AttackShape::StaticRamp)
        .map(|e| (*e).clone());
    let frontier_adaptive = all
        .iter()
        .find(|e| e.candidate.shape.is_adaptive())
        .map(|e| (*e).clone());

    TechniqueFrontier {
        technique,
        frontier,
        frontier_static,
        frontier_adaptive,
        evaluations: cache.len() as u64,
        cache_hits,
    }
}

/// Searches the frontier of every Table III technique.
///
/// Techniques are searched one after another (each search already fans
/// its candidates across the worker pool), so the report order — and
/// every byte of its JSON — is deterministic under a fixed seed.
pub fn run_search(search: &SearchConfig) -> FrontierReport {
    let results = Technique::TABLE3
        .iter()
        .map(|&technique| search_technique(TechniqueSpec::Paper(technique), search))
        .collect();
    FrontierReport {
        flip_threshold: search.base.flip_threshold,
        flip_target: search.flip_target,
        search_seed: search.seed,
        rounds: search.rounds,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SearchConfig {
        let mut search = SearchConfig::quick(7);
        search.rounds = 2;
        search.population = 4;
        search.survivors = 2;
        search.workers = 2;
        search
    }

    #[test]
    fn cache_key_separates_techniques_candidates_and_seeds() {
        let a = Candidate {
            shape: AttackShape::DoubleSided,
            acts_per_interval: 8,
            windows: 1,
        };
        let b = Candidate {
            acts_per_interval: 9,
            ..a
        };
        assert_ne!(cache_key("PARA", &a, 1), cache_key("TWiCe", &a, 1));
        assert_ne!(cache_key("PARA", &a, 1), cache_key("PARA", &b, 1));
        assert_ne!(cache_key("PARA", &a, 1), cache_key("PARA", &a, 2));
        assert_eq!(cache_key("PARA", &a, 1), cache_key("PARA", &a, 1));
    }

    #[test]
    fn seed_grid_covers_every_shape_family() {
        let families: HashSet<&str> = seed_candidates(&tiny())
            .iter()
            .map(|c| c.shape.family())
            .collect();
        assert_eq!(families.len(), 6);
    }

    #[test]
    fn targeted_objective_counts_only_the_target_row() {
        let mut search = tiny();
        search.target_row = Some(RowAddr(400));
        let candidate = Candidate {
            shape: AttackShape::DoubleSided,
            acts_per_interval: 64,
            windows: 2,
        };
        let spec = rh_harness::TechniqueSpec::Paper(rh_hwmodel::Technique::Para);
        let targeted = evaluate(spec, &candidate, &search);
        // A full-budget double-sided flood beats PARA at the quick
        // threshold, and the achieved flip is the recentered target's.
        assert!(targeted.achieved);
        assert!(targeted.time_to_first_flip.is_some());
        // The same candidate under the blind objective also achieves —
        // the targeted run is the same physics, only aimed and scored
        // differently.
        search.target_row = None;
        let blind = evaluate(spec, &candidate, &search);
        assert!(blind.achieved);
        assert_eq!(targeted.budget, blind.budget);
    }

    #[test]
    fn refinement_moves_budget_knobs_the_right_way() {
        let c = Candidate {
            shape: AttackShape::Burst {
                pairs: 1,
                duty_16ths: 8,
                phase_16ths: 4,
            },
            acts_per_interval: 32,
            windows: 2,
        };
        let search = tiny();
        assert!(refine(&c, true, &search)
            .iter()
            .all(|r| r.planned_budget(128) < c.planned_budget(128)));
        assert!(refine(&c, false, &search)
            .iter()
            .all(|r| r.planned_budget(128) >= c.planned_budget(128)));
    }
}
