//! The attack-configuration search space: shapes, budgets, and the
//! mapping from a [`Candidate`] to a runnable trace.
//!
//! A candidate is an attack *shape* (which pattern family) plus the two
//! budget knobs the frontier is measured in: activations per refresh
//! interval and duration in refresh windows.  The attacker budget of a
//! run is the number of activations the attacker actually issued
//! ([`rh_harness::RunMetrics::aggressor_activations`]), so duty-cycled
//! shapes are charged only for the intervals they hammer in.

use crate::feedback::{AdaptiveDecoyAttack, FeedbackBoard, FeedbackProbe};
use dram_sim::{BankId, RowAddr};
use mem_trace::{AttackConfig, AttackKind, Attacker, TraceSplit};
use rh_harness::RunConfig;
use serde::{Deserialize, Serialize};

/// Base aggressor row for every synthesized attack.  Chosen low enough
/// to fit the scaled-down search geometry (1024 rows) with room for the
/// phase-shifted block relocations and decoy sprays above it.
pub const BASE_ROW: u32 = 200;

/// Aggressor count the ramping shapes grow to (the paper's 1→20 ramp).
pub const RAMP_MAX_AGGRESSORS: u32 = 20;

/// The attack pattern families the search synthesizes over.
///
/// `StaticRamp` and `DoubleSided` are the paper's static attackers; the
/// remaining shapes are the red-team additions — decoy interleaving
/// (exploiting probabilistic non-selection), window-synchronized
/// relocation, refresh-synchronized duty cycling, and the
/// feedback-adaptive decoy attack driven by observer hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackShape {
    /// The paper's 1→20 multi-aggressor ramp.
    StaticRamp,
    /// Classic double-sided hammering of one victim.
    DoubleSided,
    /// Double-sided hammering interleaved with a fixed decoy spray.
    Decoy {
        /// Decoy rows interleaved per interval.
        decoys: u32,
    },
    /// A ramp whose aggressor block relocates every `shift_16ths`/16 of
    /// a refresh window (defeats location-keyed bookkeeping).
    ShiftedRamp {
        /// Relocation period in sixteenths of a refresh window (0 keeps
        /// the block fixed).
        shift_16ths: u32,
    },
    /// Refresh-synchronized bursts: hammer `pairs` aggressor pairs for
    /// `duty_16ths`/16 of every window, starting `phase_16ths`/16 after
    /// the window boundary (just after the victims' refresh slot).
    Burst {
        /// Aggressor pairs per burst.
        pairs: u32,
        /// Duty cycle in sixteenths of a window.
        duty_16ths: u32,
        /// Burst phase in sixteenths of a window.
        phase_16ths: u32,
    },
    /// Feedback-adaptive decoy interleaving: the attacker watches the
    /// mitigation's actions through an observer probe and sprays decoys
    /// only while the mitigation is reacting.
    AdaptiveDecoy {
        /// Decoy ceiling the adaptation ramps up to.
        max_decoys: u32,
    },
}

impl AttackShape {
    /// Whether this shape reacts to the defense (the red-team shapes)
    /// as opposed to the paper's static attackers.
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            AttackShape::ShiftedRamp { .. }
                | AttackShape::Burst { .. }
                | AttackShape::AdaptiveDecoy { .. }
        )
    }

    /// Short display name of the shape family.
    pub fn family(&self) -> &'static str {
        match self {
            AttackShape::StaticRamp => "static-ramp",
            AttackShape::DoubleSided => "double-sided",
            AttackShape::Decoy { .. } => "decoy",
            AttackShape::ShiftedRamp { .. } => "shifted-ramp",
            AttackShape::Burst { .. } => "burst",
            AttackShape::AdaptiveDecoy { .. } => "adaptive-decoy",
        }
    }
}

/// One point of the search space: a shape with its budget knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Attack pattern family and its shape parameters.
    pub shape: AttackShape,
    /// Attacker activations per refresh interval while active.
    pub acts_per_interval: u32,
    /// Attack duration in refresh windows.
    pub windows: u64,
}

impl Candidate {
    /// The budget this candidate plans to spend: activations per
    /// interval × the intervals its duty cycle keeps it active for.
    pub fn planned_budget(&self, intervals_per_window: u32) -> u64 {
        let ipw = u64::from(intervals_per_window);
        let intervals = self.windows * ipw;
        let active = match self.shape {
            AttackShape::Burst { duty_16ths, .. } => {
                let duty = (ipw * u64::from(duty_16ths) / 16).max(1);
                self.windows * duty.min(ipw)
            }
            _ => intervals,
        };
        active * u64::from(self.acts_per_interval)
    }

    /// A deterministic human-readable label (`family a<acts> w<windows>`).
    pub fn label(&self) -> String {
        format!(
            "{} a{} w{}",
            self.shape.family(),
            self.acts_per_interval,
            self.windows
        )
    }
}

/// A candidate compiled to a runnable trace, plus the observer probe
/// the run must attach when the shape is feedback-coupled.
pub struct BuiltAttack {
    /// The attacker trace (bank 0 of the configured geometry).
    pub trace: Box<dyn TraceSplit>,
    /// Present for [`AttackShape::AdaptiveDecoy`]: attach to the run so
    /// the attacker sees the mitigation's actions.
    pub probe: Option<FeedbackProbe>,
}

/// Compiles `candidate` into an attacker trace on bank 0 of
/// `config.geometry`, lasting `candidate.windows` refresh windows,
/// centered on the default victim `BASE_ROW + 1`.
pub fn build_attack(candidate: &Candidate, config: &RunConfig) -> BuiltAttack {
    build_attack_on(candidate, config, RowAddr(BASE_ROW + 1))
}

/// Compiles `candidate` like [`build_attack`], but centers every shape
/// on `victim` — the targeted-campaign entrypoint (the exploit
/// subsystem aims an arbitrary shape at a *specific* learned-weak row
/// instead of the fixed search victim).  Pair-centered shapes hammer
/// `victim ± 1`; block shapes (ramps, bursts) start their aggressor
/// block at `victim - 1` so `victim` is the block's first shared victim.
pub fn build_attack_on(candidate: &Candidate, config: &RunConfig, victim: RowAddr) -> BuiltAttack {
    let ipw = config.geometry.intervals_per_window();
    let intervals = candidate.windows * u64::from(ipw);
    let block_base = RowAddr(victim.0.saturating_sub(1));
    let base = AttackConfig {
        kind: AttackKind::DoubleSided { victim },
        target_banks: vec![BankId(0)],
        acts_per_interval: candidate.acts_per_interval,
        start_interval: 0,
        intervals,
        ramp_hold_intervals: 0,
    };
    let sixteenth = |n: u32| (u64::from(ipw) * u64::from(n) / 16).max(1);
    let kind = match candidate.shape {
        AttackShape::StaticRamp => {
            let ramp = AttackConfig {
                kind: AttackKind::MultiAggressorRamp {
                    base_row: block_base,
                    max_aggressors: RAMP_MAX_AGGRESSORS,
                },
                ramp_hold_intervals: (intervals / u64::from(RAMP_MAX_AGGRESSORS))
                    .max(u64::from(ipw)),
                ..base
            };
            return BuiltAttack {
                trace: Box::new(Attacker::new(ramp)),
                probe: None,
            };
        }
        AttackShape::DoubleSided => AttackKind::DoubleSided { victim },
        // Not AttackKind::DecoyAssisted: its decoy rows sit 10 000 rows
        // above the victim, outside small search geometries.  The fixed
        // decoy attack interleaves the same way with decoys nearby.
        AttackShape::Decoy { decoys } => {
            let attack = AdaptiveDecoyAttack::fixed(
                BankId(0),
                victim,
                candidate.acts_per_interval,
                intervals,
                decoys,
            );
            return BuiltAttack {
                trace: Box::new(attack),
                probe: None,
            };
        }
        AttackShape::ShiftedRamp { shift_16ths } => AttackKind::PhaseShifted {
            base_row: block_base,
            max_aggressors: RAMP_MAX_AGGRESSORS,
            shift_intervals: if shift_16ths == 0 {
                0
            } else {
                sixteenth(shift_16ths)
            },
        },
        AttackShape::Burst {
            pairs,
            duty_16ths,
            phase_16ths,
        } => AttackKind::RefreshSyncBurst {
            base_row: block_base,
            pairs,
            duty_intervals: sixteenth(duty_16ths),
            period_intervals: u64::from(ipw),
            phase: if phase_16ths == 0 {
                0
            } else {
                sixteenth(phase_16ths)
            },
        },
        AttackShape::AdaptiveDecoy { max_decoys } => {
            let board = FeedbackBoard::new(config.geometry.banks());
            let attack = AdaptiveDecoyAttack::new(
                BankId(0),
                victim,
                candidate.acts_per_interval,
                intervals,
                max_decoys,
                board.clone(),
            );
            return BuiltAttack {
                trace: Box::new(attack),
                probe: Some(FeedbackProbe::new(board)),
            };
        }
    };
    BuiltAttack {
        trace: Box::new(Attacker::new(AttackConfig { kind, ..base })),
        probe: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::TraceSource;
    use rh_harness::ExperimentScale;

    fn config() -> RunConfig {
        let mut config = RunConfig::paper(&ExperimentScale::quick());
        config.geometry = dram_sim::Geometry::scaled_down(64);
        config
    }

    #[test]
    fn planned_budget_charges_bursts_for_duty_only() {
        let full = Candidate {
            shape: AttackShape::DoubleSided,
            acts_per_interval: 32,
            windows: 2,
        };
        let burst = Candidate {
            shape: AttackShape::Burst {
                pairs: 1,
                duty_16ths: 8,
                phase_16ths: 4,
            },
            ..full
        };
        assert_eq!(full.planned_budget(128), 32 * 256);
        assert_eq!(burst.planned_budget(128), 32 * 64 * 2);
        assert!(burst.planned_budget(128) < full.planned_budget(128));
    }

    #[test]
    fn built_attacks_emit_only_labelled_aggressors() {
        let config = config();
        for shape in [
            AttackShape::StaticRamp,
            AttackShape::DoubleSided,
            AttackShape::Decoy { decoys: 3 },
            AttackShape::ShiftedRamp { shift_16ths: 8 },
            AttackShape::Burst {
                pairs: 2,
                duty_16ths: 4,
                phase_16ths: 2,
            },
            AttackShape::AdaptiveDecoy { max_decoys: 4 },
        ] {
            let candidate = Candidate {
                shape,
                acts_per_interval: 8,
                windows: 1,
            };
            let mut built = build_attack(&candidate, &config);
            let mut out = Vec::new();
            let mut intervals = 0;
            while built.trace.next_interval(&mut out) {
                intervals += 1;
            }
            assert_eq!(intervals, 128, "{shape:?}");
            assert!(!out.is_empty(), "{shape:?}");
            assert!(out.iter().all(|e| e.aggressor), "{shape:?}");
            assert_eq!(
                built.probe.is_some(),
                matches!(shape, AttackShape::AdaptiveDecoy { .. })
            );
        }
    }

    #[test]
    fn build_attack_on_recenters_every_shape() {
        let config = config();
        let victim = RowAddr(500);
        for shape in [
            AttackShape::StaticRamp,
            AttackShape::DoubleSided,
            AttackShape::Decoy { decoys: 3 },
            AttackShape::ShiftedRamp { shift_16ths: 8 },
            AttackShape::Burst {
                pairs: 2,
                duty_16ths: 4,
                phase_16ths: 2,
            },
            AttackShape::AdaptiveDecoy { max_decoys: 4 },
        ] {
            let candidate = Candidate {
                shape,
                acts_per_interval: 8,
                windows: 1,
            };
            let mut built = build_attack_on(&candidate, &config, victim);
            let mut out = Vec::new();
            while built.trace.next_interval(&mut out) {}
            // Every shape's aggressors sit at or above victim-1 (the
            // pair or block base) and the pair-centered shapes hammer
            // the victim's own neighbors.
            let min = out.iter().map(|e| e.row.0).min().unwrap();
            assert_eq!(min, victim.0 - 1, "{shape:?}");
            if matches!(
                shape,
                AttackShape::DoubleSided
                    | AttackShape::Decoy { .. }
                    | AttackShape::AdaptiveDecoy { .. }
            ) {
                assert!(
                    out.iter().any(|e| e.row == RowAddr(victim.0 + 1)),
                    "{shape:?}"
                );
            }
        }
    }

    #[test]
    fn candidate_serializes_round_trip() {
        let candidate = Candidate {
            shape: AttackShape::Burst {
                pairs: 2,
                duty_16ths: 6,
                phase_16ths: 3,
            },
            acts_per_interval: 24,
            windows: 2,
        };
        let json = serde_json::to_string(&candidate).unwrap();
        let back: Candidate = serde_json::from_str(&json).unwrap();
        assert_eq!(candidate, back);
    }
}
