//! Red-team subsystem: adaptive attack synthesis and a parallel
//! security-frontier search over the Table III mitigation techniques.
//!
//! The paper evaluates its mitigations against a fixed attacker (the
//! 1→20 ramping multi-aggressor attack).  This crate asks the converse
//! question: *how cheaply can an adaptive attacker defeat each
//! technique?*  For every technique it synthesizes attack
//! configurations — static ramps, double-sided hammering, decoy
//! interleaving, window-synchronized relocation, refresh-synchronized
//! bursts, and a feedback-adaptive attacker wired to the run engine's
//! observer hooks — and searches for the **security frontier**: the
//! minimum attacker budget (activations spent) that reaches a flip
//! target, and the shape that achieves it.
//!
//! Layers:
//!
//! * [`candidate`] — the search space and the mapping from a
//!   [`Candidate`] to a runnable trace;
//! * [`feedback`] — the observer probe / shared board pair coupling an
//!   attacker to the mitigation's actions without breaking the
//!   engine's bank-sharded determinism;
//! * [`search`] — the budgeted random → successive-halving driver with
//!   its content-addressed result cache;
//! * [`report`] — security metrics per candidate and the frontier
//!   table / JSON report.
//!
//! The whole search is deterministic: a fixed [`SearchConfig::seed`]
//! produces byte-identical frontier JSON at any worker count.

pub mod candidate;
pub mod feedback;
pub mod report;
pub mod search;

pub use candidate::{build_attack, build_attack_on, AttackShape, BuiltAttack, Candidate};
pub use feedback::{AdaptiveDecoyAttack, FeedbackBoard, FeedbackProbe};
pub use report::{Evaluation, FrontierReport, TechniqueFrontier};
pub use search::{
    cache_key, evaluate, run_search, search_technique, SearchConfig, QUICK_FLIP_THRESHOLD,
};
