//! Mitigation-feedback coupling: an observer probe that publishes the
//! defense's actions onto a shared board, and the adaptive attacker
//! that reads the board to steer its next interval.
//!
//! The coupling is deliberately *bank-local*: the probe writes only the
//! slot of the bank an action addresses, and the attacker reads only
//! its own bank's slot.  Banks never observe each other, so a run with
//! a feedback-coupled attacker stays bit-identical between the
//! sequential engine and the bank-sharded engine — the shard of bank
//! `b` sees exactly the action stream the sequential run produced for
//! bank `b`, in the same order.

use dram_sim::{BankId, RowAddr};
use mem_trace::{IdleTrace, TraceEvent, TraceSource, TraceSplit};
use rh_harness::{Observe, Observer, ShardInfo};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tivapromi::MitigationAction;

/// Per-bank counters of mitigation actions, shared between the probe
/// (writer) and the adaptive attacker (reader).
#[derive(Debug, Clone)]
pub struct FeedbackBoard {
    actions: Arc<Vec<AtomicU64>>,
}

impl FeedbackBoard {
    /// A board for `banks` banks, all counters zero.
    pub fn new(banks: u32) -> Self {
        FeedbackBoard {
            actions: Arc::new((0..banks.max(1)).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Records one mitigation action on `bank`.
    pub fn record(&self, bank: BankId) {
        if let Some(slot) = self.actions.get(bank.0 as usize) {
            // lint: allow(D4) — bank-local counter: writer and reader
            // of a slot are the same engine thread (the coupling is
            // bank-local by construction), so the RMW needs no
            // cross-thread ordering; atomicity alone suffices.
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative mitigation actions observed on `bank`.
    pub fn actions_on(&self, bank: BankId) -> u64 {
        self.actions
            .get(bank.0 as usize)
            // lint: allow(D4) — same-thread read of a bank-local slot
            // (see `record`); no ordering needed for determinism.
            .map_or(0, |slot| slot.load(Ordering::Relaxed))
    }
}

/// The observer side of the coupling: bumps the board slot of every
/// mitigation action's bank.
#[derive(Debug, Clone)]
pub struct FeedbackProbe {
    board: FeedbackBoard,
}

impl FeedbackProbe {
    /// A probe writing to `board`.
    pub fn new(board: FeedbackBoard) -> Self {
        FeedbackProbe { board }
    }
}

impl Observe for FeedbackProbe {
    fn observer(&self, _shard: &ShardInfo) -> Box<dyn Observer> {
        Box::new(FeedbackObserver {
            board: self.board.clone(),
        })
    }
}

struct FeedbackObserver {
    board: FeedbackBoard,
}

impl Observer for FeedbackObserver {
    fn on_action(&mut self, action: &MitigationAction, _true_positive: bool) {
        self.board.record(action.bank());
    }
}

/// A double-sided attacker that sprays decoy rows only while the
/// mitigation is reacting.
///
/// Each interval the attacker compares its bank's board counter against
/// the value it saw last interval.  New mitigation actions mean the
/// defense noticed: the attacker raises its decoy count (up to
/// `max_decoys`), diluting whatever the mitigation samples or tracks —
/// PARA-style probabilistic selection picks decoy neighbors, table
/// techniques (ProHit, MRLoc) evict the true aggressors.  A quiet
/// defense lets the attacker drop decoys one per interval and put the
/// whole budget back into hammering.
#[derive(Debug)]
pub struct AdaptiveDecoyAttack {
    bank: BankId,
    victim: RowAddr,
    acts_per_interval: u32,
    intervals: u64,
    max_decoys: u32,
    board: FeedbackBoard,
    adaptive: bool,
    produced: u64,
    seen_actions: u64,
    decoys: u32,
    decoy_cursor: u32,
}

impl AdaptiveDecoyAttack {
    /// A feedback-adaptive attack on `victim` in `bank`, reading
    /// `board` for the defense's reactions.
    pub fn new(
        bank: BankId,
        victim: RowAddr,
        acts_per_interval: u32,
        intervals: u64,
        max_decoys: u32,
        board: FeedbackBoard,
    ) -> Self {
        AdaptiveDecoyAttack {
            bank,
            victim,
            acts_per_interval: acts_per_interval.max(1),
            intervals,
            max_decoys,
            board,
            adaptive: true,
            produced: 0,
            seen_actions: 0,
            decoys: 0,
            decoy_cursor: 0,
        }
    }

    /// A non-adaptive variant holding a constant decoy level: the same
    /// decoy-interleaved hammering with the feedback loop disabled
    /// (used for the static decoy search shape, whose decoy rows must
    /// stay inside small search geometries).
    pub fn fixed(
        bank: BankId,
        victim: RowAddr,
        acts_per_interval: u32,
        intervals: u64,
        decoys: u32,
    ) -> Self {
        AdaptiveDecoyAttack {
            bank,
            victim,
            acts_per_interval: acts_per_interval.max(1),
            intervals,
            max_decoys: decoys,
            board: FeedbackBoard::new(1),
            adaptive: false,
            produced: 0,
            seen_actions: 0,
            decoys,
            decoy_cursor: 0,
        }
    }

    /// The decoy level the attacker is currently holding.
    pub fn decoy_level(&self) -> u32 {
        self.decoys
    }
}

impl TraceSource for AdaptiveDecoyAttack {
    fn next_interval(&mut self, out: &mut Vec<TraceEvent>) -> bool {
        if self.produced >= self.intervals {
            return false;
        }
        if self.adaptive {
            let now = self.board.actions_on(self.bank);
            if now > self.seen_actions {
                self.decoys = (self.decoys + 1).min(self.max_decoys);
            } else {
                self.decoys = self.decoys.saturating_sub(1);
            }
            self.seen_actions = now;
        }

        // One decoy interleaved after every hammer pair, up to the
        // current level; decoy rows live far above the victim so their
        // neighbors never overlap the attacked rows.
        let flanks = [
            RowAddr(self.victim.0.saturating_sub(1)),
            RowAddr(self.victim.0 + 1),
        ];
        let mut emitted = 0u32;
        let mut since_decoy = 0u32;
        while emitted < self.acts_per_interval {
            out.push(TraceEvent::attack(
                self.bank,
                flanks[(emitted % 2) as usize],
            ));
            emitted += 1;
            since_decoy += 1;
            if self.decoys > 0 && since_decoy >= 2 && emitted < self.acts_per_interval {
                let decoy = RowAddr(self.victim.0 + 64 + 2 * (self.decoy_cursor % self.decoys));
                self.decoy_cursor = self.decoy_cursor.wrapping_add(1);
                out.push(TraceEvent::attack(self.bank, decoy));
                emitted += 1;
                since_decoy = 0;
            }
        }
        self.produced += 1;
        true
    }

    fn intervals_hint(&self) -> Option<u64> {
        Some(self.intervals)
    }

    fn max_batch_intervals(&self) -> u64 {
        // The adaptive variant reads the feedback board at the top of
        // every interval: batching ahead of the mitigation would break
        // the closed loop.  The fixed variant is open-loop and may be
        // prefetched freely.
        if self.adaptive {
            1
        } else {
            u64::MAX
        }
    }
}

impl TraceSplit for AdaptiveDecoyAttack {
    fn bank_shard(&self, bank: BankId) -> Box<dyn TraceSplit> {
        if bank == self.bank {
            // Fresh attacker state sharing the same board: the shard
            // re-derives the decoy schedule from the actions the
            // defense takes on this bank alone.
            Box::new(AdaptiveDecoyAttack {
                bank: self.bank,
                victim: self.victim,
                acts_per_interval: self.acts_per_interval,
                intervals: self.intervals,
                max_decoys: self.max_decoys,
                board: self.board.clone(),
                adaptive: self.adaptive,
                produced: 0,
                seen_actions: 0,
                decoys: if self.adaptive { 0 } else { self.max_decoys },
                decoy_cursor: 0,
            })
        } else {
            Box::new(IdleTrace::new(self.intervals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_is_bank_local() {
        let board = FeedbackBoard::new(2);
        board.record(BankId(0));
        board.record(BankId(0));
        board.record(BankId(1));
        assert_eq!(board.actions_on(BankId(0)), 2);
        assert_eq!(board.actions_on(BankId(1)), 1);
        // Out-of-range banks are ignored, not a panic.
        board.record(BankId(7));
        assert_eq!(board.actions_on(BankId(7)), 0);
    }

    #[test]
    fn probe_observer_records_actions() {
        let board = FeedbackBoard::new(1);
        let probe = FeedbackProbe::new(board.clone());
        let mut observer = probe.observer(&ShardInfo::whole_run());
        observer.on_action(
            &MitigationAction::RefreshRow {
                bank: BankId(0),
                row: RowAddr(10),
            },
            true,
        );
        assert_eq!(board.actions_on(BankId(0)), 1);
    }

    #[test]
    fn decoys_ramp_with_feedback_and_decay_without() {
        let board = FeedbackBoard::new(1);
        let mut attack = AdaptiveDecoyAttack::new(BankId(0), RowAddr(201), 8, 10, 4, board.clone());
        let mut out = Vec::new();

        // Quiet defense: no decoys, pure double-sided hammering.
        assert!(attack.next_interval(&mut out));
        assert_eq!(attack.decoy_level(), 0);
        assert!(out
            .iter()
            .all(|e| e.row == RowAddr(200) || e.row == RowAddr(202)));

        // The defense reacts: decoys appear next interval.
        board.record(BankId(0));
        out.clear();
        assert!(attack.next_interval(&mut out));
        assert_eq!(attack.decoy_level(), 1);
        assert!(out.iter().any(|e| e.row.0 >= 201 + 64));
        assert_eq!(out.len(), 8);

        // Quiet again: the level decays back down.
        out.clear();
        assert!(attack.next_interval(&mut out));
        assert_eq!(attack.decoy_level(), 0);
    }

    #[test]
    fn shard_shares_the_board_and_other_banks_idle() {
        let board = FeedbackBoard::new(2);
        let attack = AdaptiveDecoyAttack::new(BankId(0), RowAddr(201), 4, 3, 2, board.clone());
        let mut own = attack.bank_shard(BankId(0));
        let mut other = attack.bank_shard(BankId(1));
        let mut out = Vec::new();
        assert!(own.next_interval(&mut out));
        assert!(!out.is_empty());
        out.clear();
        assert!(other.next_interval(&mut out));
        assert!(out.is_empty());
    }
}
