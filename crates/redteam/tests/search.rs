//! End-to-end properties of the security-frontier search.

use rh_harness::TechniqueSpec;
use rh_hwmodel::Technique;
use rh_redteam::{search_technique, SearchConfig};

fn quick(workers: usize) -> SearchConfig {
    SearchConfig::quick(7).with_workers(workers)
}

/// The acceptance property of the red-team subsystem: an adaptive
/// attack reaches the flip target against PARA with strictly less
/// budget than the paper's static ramp attacker needs.
#[test]
fn adaptive_frontier_beats_static_ramp_against_para() {
    let frontier = search_technique(TechniqueSpec::Paper(Technique::Para), &quick(0));
    let adaptive = frontier
        .frontier_adaptive
        .as_ref()
        .expect("an adaptive shape must breach PARA at quick scale");
    let static_ramp = frontier
        .frontier_static
        .as_ref()
        .expect("the static ramp must breach PARA at quick scale");
    assert!(adaptive.achieved && static_ramp.achieved);
    assert!(
        adaptive.budget < static_ramp.budget,
        "adaptive budget {} must undercut static ramp budget {}",
        adaptive.budget,
        static_ramp.budget
    );
    // The overall frontier is never worse than either restriction.
    let overall = frontier.frontier.as_ref().unwrap();
    assert!(overall.budget <= adaptive.budget);
}

/// Survivors re-enter the candidate pool every round, so a multi-round
/// search must hit the content-addressed cache — and the hit counter,
/// being decided before dispatch, must not depend on the worker count.
#[test]
fn cache_hits_are_counted_and_worker_independent() {
    let baseline = search_technique(TechniqueSpec::Paper(Technique::Para), &quick(1));
    assert!(
        baseline.cache_hits > 0,
        "survivors re-entering the pool must hit the cache"
    );
    assert!(baseline.evaluations > 0);
    for workers in [2, 4] {
        let again = search_technique(TechniqueSpec::Paper(Technique::Para), &quick(workers));
        assert_eq!(baseline, again, "search diverged at {workers} workers");
    }
}
