//! CaPRoMi — counter-assisted probabilistic weighting (Section III-D).
//!
//! Unlike the purely probabilistic variants, CaPRoMi defers its decisions
//! to the end of each refresh interval: a small lockable counter table
//! tracks how often each row was activated within the interval, and the
//! trigger probability combines the count with the logarithmic weight:
//!
//! ```text
//! p_r = cnt_r · w_log_r · P_base
//! ```
//!
//! The extra activations decided at interval end are issued during the
//! following refresh interval.

use crate::bank_rng::BankRngs;
use crate::config::TivaConfig;
use crate::counter_table::{CounterEntry, CounterTable};
use crate::history::HistoryTable;
use crate::mitigation::{ActionSink, Mitigation, MitigationAction};
use crate::weight::{linear_weight, log_weight};
use dram_sim::{BankId, RowAddr};
use mem_trace::EventBatch;
use rand::RngExt;
use std::ops::Range;

/// The counter-assisted TiVaPRoMi variant.
///
/// ```
/// use tivapromi::{CaPromi, Mitigation, TivaConfig};
/// use dram_sim::{BankId, Geometry, RowAddr};
///
/// let cfg = TivaConfig::paper(&Geometry::paper());
/// let mut m = CaPromi::new(cfg, 9);
/// let mut actions = Vec::new();
/// // Flood a row; decisions are made at interval ends, so triggers
/// // appear from `on_refresh_interval`.
/// let mut triggered = false;
/// for _ in 0..2000 {
///     for _ in 0..150 {
///         m.on_activate(BankId(0), RowAddr(900), &mut actions);
///         assert!(actions.is_empty(), "CaPRoMi never triggers on act");
///     }
///     m.on_refresh_interval(&mut actions);
///     triggered |= !actions.is_empty();
///     actions.clear();
/// }
/// assert!(triggered);
/// ```
#[derive(Debug)]
pub struct CaPromi {
    config: TivaConfig,
    histories: Vec<HistoryTable>,
    counters: Vec<CounterTable>,
    /// Extra activations decided at the previous interval's end, issued
    /// during the current interval ("the extra activations will then be
    /// issued during the next refresh interval").
    pending: Vec<MitigationAction>,
    /// Current refresh interval within the window.
    interval: u32,
    /// Per-bank draw streams (bank-shardable determinism).
    rngs: BankRngs,
    /// Drain staging reused every interval so the steady-state ref walk
    /// never touches the heap (`tests/alloc_free.rs`).
    drained: Vec<CounterEntry>,
    triggers: u64,
}

impl CaPromi {
    /// Creates a CaPRoMi instance for `config`, seeded deterministically.
    pub fn new(config: TivaConfig, seed: u64) -> Self {
        CaPromi {
            histories: (0..config.banks)
                .map(|_| HistoryTable::with_policy(config.history_entries, config.history_policy))
                .collect(),
            counters: (0..config.banks)
                .map(|_| CounterTable::new(config.counter_entries, config.lock_threshold))
                .collect(),
            // Each counter entry decides at most once per interval, so
            // `counter_entries × banks` bounds the pending backlog
            // exactly — preallocating it keeps the steady state
            // heap-quiet.
            pending: Vec::with_capacity(config.counter_entries * config.banks as usize),
            interval: 0,
            rngs: BankRngs::with_banks(seed, config.banks),
            drained: Vec::with_capacity(config.counter_entries),
            config,
            triggers: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TivaConfig {
        &self.config
    }

    /// Current refresh interval within the window.
    pub fn current_interval(&self) -> u32 {
        self.interval
    }

    /// Total extra activations triggered so far.
    pub fn trigger_count(&self) -> u64 {
        self.triggers
    }

    /// Current activation count recorded for `row` (diagnostic).
    pub fn count_of(&self, bank: BankId, row: RowAddr) -> Option<u32> {
        self.counters[bank.index()].entry(row).map(|e| e.count)
    }
}

impl Mitigation for CaPromi {
    fn name(&self) -> &str {
        "CaPRoMi"
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, _actions: &mut Vec<MitigationAction>) {
        // The history table is searched in parallel with the counter
        // table (Fig. 3 "find linked"/"link" states); a hit links the
        // counter entry to the history slot so the ref-side weight
        // calculation can start from the stored trigger interval.
        let slot = self.histories[bank.index()].position(row);
        let _ = self.counters[bank.index()].observe(row, slot, self.rngs.get(bank));
    }

    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, _sink: &mut ActionSink) {
        // CaPRoMi's act path only counts — decisions happen at the
        // interval end — so the batched loop skips the action-tagging
        // bookkeeping of the default fan-out entirely.  Per bank run,
        // the history/counter/rng lookups are hoisted once and the
        // kernel walks the row column directly.
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let history = &mut self.histories[bank.index()];
            let counters = &mut self.counters[bank.index()];
            let rng = self.rngs.get(bank);
            for i in run {
                let row = rows[i];
                let slot = history.position(row);
                let _ = counters.observe(row, slot, &mut *rng);
            }
        }
    }

    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>) {
        // Issue the activations decided at the previous interval's end.
        actions.append(&mut self.pending);

        let i = self.interval;
        let ref_int = self.config.ref_int;
        let exponent = self.config.p_base_exponent;

        let mut drained = std::mem::take(&mut self.drained);
        for bank_idx in 0..self.counters.len() {
            let bank_id = BankId(u32::try_from(bank_idx).expect("bank count fits u32"));
            self.counters[bank_idx].drain_into(&mut drained);
            let history = &mut self.histories[bank_idx];
            for &entry in &drained {
                let base = entry
                    .history_slot
                    .and_then(|s| history.interval_at(s))
                    .unwrap_or_else(|| self.config.home_interval(entry.row));
                let w = linear_weight(i, base % ref_int, ref_int);
                let w_log = log_weight(w);
                // p = cnt · w_log · P_base, realised as a scaled compare
                // against a uniform `exponent`-bit draw; a product that
                // exceeds the draw range triggers deterministically.
                let scaled = u64::from(entry.count) * u64::from(w_log);
                let draw: u64 = self.rngs.get(bank_id).random_range(0..(1u64 << exponent));
                if draw < scaled {
                    self.pending.push(MitigationAction::ActivateNeighbors {
                        bank: bank_id,
                        row: entry.row,
                    });
                    history.record(entry.row, i);
                    self.triggers += 1;
                }
            }
        }
        drained.clear();
        self.drained = drained;

        self.interval += 1;
        if self.interval == ref_int {
            self.interval = 0;
            for h in &mut self.histories {
                h.clear();
            }
        }
    }

    fn storage_bits_per_bank(&self) -> u64 {
        self.config.history_bits() + self.config.counter_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::Geometry;

    fn config() -> TivaConfig {
        TivaConfig::paper(&Geometry::paper().with_banks(1))
    }

    #[test]
    fn never_triggers_on_act() {
        let mut m = CaPromi::new(config(), 1);
        let mut actions = Vec::new();
        for r in 0..1000u32 {
            m.on_activate(BankId(0), RowAddr(r % 64), &mut actions);
        }
        assert!(actions.is_empty());
    }

    #[test]
    fn counter_table_drains_each_interval() {
        let mut m = CaPromi::new(config(), 2);
        let mut actions = Vec::new();
        m.on_activate(BankId(0), RowAddr(5), &mut actions);
        assert_eq!(m.count_of(BankId(0), RowAddr(5)), Some(1));
        m.on_refresh_interval(&mut actions);
        assert_eq!(m.count_of(BankId(0), RowAddr(5)), None);
    }

    #[test]
    fn flooded_row_triggers_within_a_window() {
        let mut m = CaPromi::new(config(), 3);
        let mut actions = Vec::new();
        let mut first_trigger = None;
        let mut acts = 0u64;
        'outer: for _interval in 0..8192 {
            for _ in 0..165 {
                m.on_activate(BankId(0), RowAddr(4000), &mut actions);
                acts += 1;
            }
            m.on_refresh_interval(&mut actions);
            if !actions.is_empty() {
                first_trigger = Some(acts);
                break 'outer;
            }
        }
        let first = first_trigger.expect("flooded row must trigger");
        // §IV: CaPRoMi's first extra activation under flooding arrives
        // well before the 69 K one-sided safety bound.
        assert!(first < 69_000, "first trigger at {first} activations");
    }

    #[test]
    fn trigger_updates_history_and_shrinks_weight() {
        let mut m = CaPromi::new(config(), 4);
        let mut actions = Vec::new();
        // Flood until a trigger lands.
        loop {
            for _ in 0..165 {
                m.on_activate(BankId(0), RowAddr(4000), &mut actions);
            }
            m.on_refresh_interval(&mut actions);
            if !actions.is_empty() {
                break;
            }
        }
        // The actions surfaced one interval after the decision (deferred
        // issue), so the recorded history interval is two back.
        let trigger_interval = m.current_interval() - 2;
        assert_eq!(m.histories[0].lookup(RowAddr(4000)), Some(trigger_interval));
    }

    #[test]
    fn quiet_rows_rarely_trigger_early_in_window() {
        // A single activation of a freshly-refreshed row has
        // p = 1 · w_log(small) · 2^-23 ≈ 2^-22 — over 1000 intervals the
        // expected number of triggers is ≈ 0.001.
        let mut m = CaPromi::new(config(), 5);
        let mut actions = Vec::new();
        let mut total = 0;
        for interval in 0..1000u32 {
            // Activate the row currently being refreshed (weight ≈ 0).
            let row = RowAddr((interval % 8192) * 8);
            m.on_activate(BankId(0), row, &mut actions);
            m.on_refresh_interval(&mut actions);
            total += actions.len();
            actions.clear();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn storage_includes_both_tables() {
        let m = CaPromi::new(config(), 6);
        // 120 B history + 256 B counters = 376 B ≈ the paper's 374 B.
        assert_eq!(m.storage_bits_per_bank(), 960 + 2048);
        assert!((m.storage_bytes_per_bank() - 376.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = CaPromi::new(config(), seed);
            let mut actions = Vec::new();
            let mut n = 0;
            for _ in 0..2000 {
                for _ in 0..100 {
                    m.on_activate(BankId(0), RowAddr(4000), &mut actions);
                }
                m.on_refresh_interval(&mut actions);
                n += actions.len();
                actions.clear();
            }
            n
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn batched_kernel_matches_scalar_path() {
        use crate::mitigation::ActionSink;
        use mem_trace::{EventBatch, TraceEvent};
        let cfg = TivaConfig::paper(&Geometry::paper().with_banks(3));
        let mut kernel = CaPromi::new(cfg, 11);
        let mut scalar = CaPromi::new(cfg, 11);
        let mut sink = ActionSink::new();
        let mut kernel_actions = Vec::new();
        let mut scalar_actions = Vec::new();
        for interval in 0..600u32 {
            // Mixed-bank traffic with single-event runs plus a flooded row.
            let mut events = Vec::new();
            for i in 0..150u32 {
                let bank = BankId(i % 3);
                let row = if i % 5 == 0 {
                    RowAddr(4000)
                } else {
                    RowAddr(100 + (i + interval) % 9)
                };
                events.push(TraceEvent::benign(bank, row));
            }
            let mut batch = EventBatch::new();
            batch.push_interval(&events);
            sink.reset();
            kernel.on_batch(&batch, batch.segment(0), &mut sink);
            for e in &events {
                scalar.on_activate(e.bank, e.row, &mut scalar_actions);
            }
            kernel.on_refresh_interval(&mut kernel_actions);
            scalar.on_refresh_interval(&mut scalar_actions);
            assert_eq!(kernel_actions, scalar_actions, "interval {interval}");
            kernel_actions.clear();
            scalar_actions.clear();
        }
        assert_eq!(kernel.trigger_count(), scalar.trigger_count());
        assert!(kernel.trigger_count() > 0);
    }
}
