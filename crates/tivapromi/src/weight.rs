//! The weight equations at the heart of TiVaPRoMi.
//!
//! Eq. 1 (linear): the number of refresh intervals since row `r` was
//! last refreshed, given the current interval `i` and the row's refresh
//! interval `f_r`:
//!
//! ```text
//! w_r = i − f_r             if i ≥ f_r
//! w_r = i − f_r + RefInt    if i < f_r
//! ```
//!
//! Eq. 2 (logarithmic): `w_log = 2^⌈log2(w + 1)⌉`, implemented in
//! hardware by a modified priority encoder.  All weights between two
//! powers of two share the next power of two ("for all values between 16
//! and 31, their weight will be constant 32"), so the weight ramps up
//! faster in the low range, closing LiPRoMi's flooding window.

/// Eq. 1: refresh intervals elapsed since the base interval `f_r`.
///
/// `i` and `f_r` must both be `< ref_int`; the result is in
/// `[0, ref_int − 1]`.
///
/// # Panics
///
/// Panics (in debug builds) if `i` or `f_r` is not below `ref_int`.
///
/// ```
/// use tivapromi::linear_weight;
/// assert_eq!(linear_weight(10, 4, 8192), 6);      // same window
/// assert_eq!(linear_weight(4, 10, 8192), 8186);   // f_r ahead: wraps
/// assert_eq!(linear_weight(5, 5, 8192), 0);
/// ```
#[inline]
pub fn linear_weight(i: u32, f_r: u32, ref_int: u32) -> u32 {
    debug_assert!(i < ref_int, "interval {i} out of range {ref_int}");
    debug_assert!(f_r < ref_int, "f_r {f_r} out of range {ref_int}");
    if i >= f_r {
        i - f_r
    } else {
        i + ref_int - f_r
    }
}

/// Eq. 2: `2^⌈log2(w + 1)⌉` — the logarithmic weight.
///
/// The `+ 1` handles the `w = 0` corner case; the ceiling makes all
/// values between two powers of two share the same weight.
///
/// ```
/// use tivapromi::log_weight;
/// assert_eq!(log_weight(0), 1);
/// assert_eq!(log_weight(1), 2);
/// assert_eq!(log_weight(3), 4);
/// // "for all values between 16 and 31, their weight will be constant 32"
/// for w in 16..=31 {
///     assert_eq!(log_weight(w), 32);
/// }
/// ```
#[inline]
pub fn log_weight(w: u32) -> u32 {
    // next_power_of_two(w + 1) = 2^ceil(log2(w + 1)).
    (w + 1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_weight_same_window() {
        assert_eq!(linear_weight(100, 40, 8192), 60);
        assert_eq!(linear_weight(0, 0, 8192), 0);
        assert_eq!(linear_weight(8191, 0, 8192), 8191);
    }

    #[test]
    fn linear_weight_wraps_across_windows() {
        // Row refreshed at interval 8000, now at interval 100 of the
        // next window: 100 − 8000 + 8192 = 292 intervals elapsed.
        assert_eq!(linear_weight(100, 8000, 8192), 292);
        // Worst case: refreshed in the very next interval.
        assert_eq!(linear_weight(0, 1, 8192), 8191);
    }

    #[test]
    fn log_weight_powers_of_two_fixed_points() {
        // 2^k - 1 maps to 2^k; 2^k maps to 2^(k+1).
        assert_eq!(log_weight(7), 8);
        assert_eq!(log_weight(8), 16);
        assert_eq!(log_weight(15), 16);
        assert_eq!(log_weight(16), 32);
    }

    #[test]
    fn log_weight_handles_max_ref_int() {
        assert_eq!(log_weight(8191), 8192);
        assert_eq!(log_weight(4096), 8192);
        assert_eq!(log_weight(4095), 4096);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn linear_weight_rejects_out_of_range_interval() {
        let _ = linear_weight(8192, 0, 8192);
    }
}
