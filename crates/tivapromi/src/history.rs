//! The per-bank FIFO history table.
//!
//! After TiVaPRoMi triggers an extra activation for the neighbors of an
//! aggressor row, another trigger is only useful once the aggressor has
//! accumulated enough further activations.  The history table therefore
//! stores `(row, interval-of-trigger)` pairs; a subsequent activation of
//! a stored row computes its weight from the stored interval instead of
//! the row's refresh slot, keeping the weight — and hence the probability
//! of a redundant trigger — small.
//!
//! The table is small (32 entries per bank in the paper, 120 B), searched
//! sequentially (the search is overlapped with the activate-to-activate
//! gap), replaced FIFO when full, and cleared at every new refresh
//! window.

use dram_sim::RowAddr;
use serde::{Deserialize, Serialize};

/// Replacement policy of the history table.
///
/// The paper uses FIFO ("old entries are replaced based on a simple
/// FIFO policy"); LRU is provided for the replacement-policy ablation —
/// it needs per-entry recency state (a timestamp or shift network in
/// hardware), which is exactly the cost the paper avoids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HistoryPolicy {
    /// Evict the oldest *inserted* entry (the paper's choice).
    #[default]
    Fifo,
    /// Evict the least recently *matched* entry.
    Lru,
}

/// A fixed-capacity table of `(row, trigger interval)` pairs with FIFO
/// (default) or LRU replacement.
///
/// ```
/// use tivapromi::HistoryTable;
/// use dram_sim::RowAddr;
///
/// let mut t = HistoryTable::new(2);
/// t.record(RowAddr(5), 100);
/// t.record(RowAddr(9), 120);
/// assert_eq!(t.lookup(RowAddr(5)), Some(100));
/// t.record(RowAddr(7), 130);         // full: evicts the oldest (row 5)
/// assert_eq!(t.lookup(RowAddr(5)), None);
/// assert_eq!(t.lookup(RowAddr(7)), Some(130));
/// ```
#[derive(Debug, Clone)]
pub struct HistoryTable {
    entries: Vec<(RowAddr, u32)>,
    capacity: usize,
    /// Next slot to overwrite once full (FIFO pointer).
    next_victim: usize,
    policy: HistoryPolicy,
    /// Monotonic use clock (LRU only).
    clock: u64,
    /// Last-use stamp per slot (LRU only).
    stamps: Vec<u64>,
}

impl HistoryTable {
    /// Creates an empty table holding at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        HistoryTable::with_policy(capacity, HistoryPolicy::Fifo)
    }

    /// Creates an empty table with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_policy(capacity: usize, policy: HistoryPolicy) -> Self {
        assert!(capacity > 0, "history table capacity must be nonzero");
        HistoryTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_victim: 0,
            policy,
            clock: 0,
            stamps: Vec::with_capacity(capacity),
        }
    }

    /// The replacement policy in effect.
    pub fn policy(&self) -> HistoryPolicy {
        self.policy
    }

    /// Like [`HistoryTable::lookup`], but also registers the access for
    /// LRU recency — the search the FSM performs on every activation.
    pub fn search(&mut self, row: RowAddr) -> Option<u32> {
        match self.position(row) {
            Some(pos) => {
                self.clock += 1;
                self.stamps[pos] = self.clock;
                Some(self.entries[pos].1)
            }
            None => None,
        }
    }

    /// Sequentially searches the table for `row`; returns the stored
    /// trigger interval if present.
    pub fn lookup(&self, row: RowAddr) -> Option<u32> {
        self.entries
            .iter()
            .find(|(r, _)| *r == row)
            .map(|&(_, i)| i)
    }

    /// Index of `row`'s entry, if present — CaPRoMi's counter table links
    /// to history entries by index ("the matching address of the history
    /// table").
    pub fn position(&self, row: RowAddr) -> Option<usize> {
        self.entries.iter().position(|(r, _)| *r == row)
    }

    /// The stored interval at `index`, if valid.
    pub fn interval_at(&self, index: usize) -> Option<u32> {
        self.entries.get(index).map(|&(_, i)| i)
    }

    /// Records that an extra activation for `row` was triggered in
    /// refresh interval `interval`.
    ///
    /// If the row is already stored, its interval is updated in place;
    /// otherwise it is appended, evicting the oldest entry (simple FIFO)
    /// when the table is full.  Returns the slot index used.
    pub fn record(&mut self, row: RowAddr, interval: u32) -> usize {
        self.clock += 1;
        if let Some(pos) = self.position(row) {
            self.entries[pos].1 = interval;
            self.stamps[pos] = self.clock;
            return pos;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((row, interval));
            self.stamps.push(self.clock);
            self.entries.len() - 1
        } else {
            let slot = match self.policy {
                HistoryPolicy::Fifo => {
                    let slot = self.next_victim;
                    self.next_victim = (slot + 1) % self.capacity;
                    slot
                }
                HistoryPolicy::Lru => self
                    .stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &stamp)| stamp)
                    .map(|(slot, _)| slot)
                    .expect("table is full, hence nonempty"),
            };
            self.entries[slot] = (row, interval);
            self.stamps[slot] = self.clock;
            slot
        }
    }

    /// Clears the table (called at every new refresh window).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stamps.clear();
        self.next_victim = 0;
        self.clock = 0;
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over `(row, interval)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (RowAddr, u32)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_returns_none() {
        let t = HistoryTable::new(4);
        assert_eq!(t.lookup(RowAddr(1)), None);
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    fn record_then_lookup() {
        let mut t = HistoryTable::new(4);
        let slot = t.record(RowAddr(3), 77);
        assert_eq!(slot, 0);
        assert_eq!(t.lookup(RowAddr(3)), Some(77));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn record_existing_updates_in_place() {
        let mut t = HistoryTable::new(4);
        t.record(RowAddr(3), 77);
        t.record(RowAddr(5), 80);
        let slot = t.record(RowAddr(3), 99);
        assert_eq!(slot, 0, "existing entry keeps its slot");
        assert_eq!(t.lookup(RowAddr(3)), Some(99));
        assert_eq!(t.len(), 2, "no duplicate entry");
    }

    #[test]
    fn fifo_eviction_order() {
        let mut t = HistoryTable::new(3);
        t.record(RowAddr(1), 10);
        t.record(RowAddr(2), 20);
        t.record(RowAddr(3), 30);
        // Full: the next three inserts evict rows 1, 2, 3 in order.
        t.record(RowAddr(4), 40);
        assert_eq!(t.lookup(RowAddr(1)), None);
        assert_eq!(t.lookup(RowAddr(2)), Some(20));
        t.record(RowAddr(5), 50);
        assert_eq!(t.lookup(RowAddr(2)), None);
        assert_eq!(t.lookup(RowAddr(3)), Some(30));
        t.record(RowAddr(6), 60);
        assert_eq!(t.lookup(RowAddr(3)), None);
        assert_eq!(t.lookup(RowAddr(4)), Some(40));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = HistoryTable::new(2);
        t.record(RowAddr(1), 10);
        t.record(RowAddr(2), 20);
        t.record(RowAddr(3), 30); // wraps the FIFO pointer
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(RowAddr(3)), None);
        // After clear the FIFO restarts from slot 0.
        assert_eq!(t.record(RowAddr(9), 1), 0);
    }

    #[test]
    fn position_and_interval_at_agree() {
        let mut t = HistoryTable::new(4);
        t.record(RowAddr(8), 5);
        t.record(RowAddr(9), 6);
        let pos = t.position(RowAddr(9)).unwrap();
        assert_eq!(t.interval_at(pos), Some(6));
        assert_eq!(t.interval_at(99), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = HistoryTable::new(0);
    }

    #[test]
    fn iter_yields_storage_order() {
        let mut t = HistoryTable::new(3);
        t.record(RowAddr(1), 10);
        t.record(RowAddr(2), 20);
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v, vec![(RowAddr(1), 10), (RowAddr(2), 20)]);
    }

    #[test]
    fn lru_evicts_least_recently_matched() {
        let mut t = HistoryTable::with_policy(2, HistoryPolicy::Lru);
        assert_eq!(t.policy(), HistoryPolicy::Lru);
        t.record(RowAddr(1), 10);
        t.record(RowAddr(2), 20);
        // Touch row 1 — row 2 becomes the LRU victim.
        assert_eq!(t.search(RowAddr(1)), Some(10));
        t.record(RowAddr(3), 30);
        assert_eq!(t.lookup(RowAddr(1)), Some(10));
        assert_eq!(t.lookup(RowAddr(2)), None);
        assert_eq!(t.lookup(RowAddr(3)), Some(30));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut t = HistoryTable::new(2);
        t.record(RowAddr(1), 10);
        t.record(RowAddr(2), 20);
        // Touching row 1 does not save it under FIFO.
        assert_eq!(t.search(RowAddr(1)), Some(10));
        t.record(RowAddr(3), 30);
        assert_eq!(t.lookup(RowAddr(1)), None);
        assert_eq!(t.lookup(RowAddr(2)), Some(20));
    }

    #[test]
    fn search_misses_do_not_disturb_state() {
        let mut t = HistoryTable::with_policy(2, HistoryPolicy::Lru);
        t.record(RowAddr(1), 10);
        assert_eq!(t.search(RowAddr(9)), None);
        assert_eq!(t.len(), 1);
    }
}
