//! Configuration shared by the four TiVaPRoMi variants.

use crate::history::HistoryPolicy;
use crate::P_BASE_EXPONENT;
use dram_sim::Geometry;
use serde::{Deserialize, Serialize};

/// Parameters of a TiVaPRoMi instance.
///
/// [`TivaConfig::paper`] reproduces the evaluated configuration: 32-entry
/// history table (120 B per 1 GB bank), 64-entry counter table (374 B
/// total for CaPRoMi), `P_base = 2^-23`.
///
/// ```
/// use tivapromi::TivaConfig;
/// use dram_sim::Geometry;
///
/// let c = TivaConfig::paper(&Geometry::paper());
/// assert_eq!(c.history_entries, 32);
/// assert_eq!(c.counter_entries, 64);
/// assert_eq!(c.ref_int, 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TivaConfig {
    /// Number of banks (one history/counter table each).
    pub banks: u32,
    /// Rows per bank (`RowsPB`), for address-width accounting.
    pub rows_per_bank: u32,
    /// Refresh intervals per window (`RefInt`).
    pub ref_int: u32,
    /// Rows refreshed per interval (`RowsPI`), defining `f_r = r / RowsPI`.
    pub rows_per_interval: u32,
    /// History table entries per bank (paper: 32).
    pub history_entries: usize,
    /// Counter table entries per bank, CaPRoMi only (paper: 64).
    pub counter_entries: usize,
    /// `P_base = 2^-p_base_exponent` (paper: 23).
    pub p_base_exponent: u32,
    /// CaPRoMi lock threshold: a counter reaching this many activations
    /// within one refresh interval can no longer be evicted.  The paper
    /// does not publish the value; the default (16) keeps hammered rows
    /// locked while leaving typical workload rows (a handful of
    /// activations per interval) evictable.
    pub lock_threshold: u32,
    /// History-table replacement policy (paper: FIFO; LRU provided for
    /// the replacement-policy ablation).
    pub history_policy: HistoryPolicy,
}

impl TivaConfig {
    /// The paper's evaluated configuration for the given geometry.
    pub fn paper(geometry: &Geometry) -> Self {
        TivaConfig {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            ref_int: geometry.intervals_per_window(),
            rows_per_interval: geometry.rows_per_interval(),
            history_entries: 32,
            counter_entries: 64,
            p_base_exponent: P_BASE_EXPONENT,
            lock_threshold: 16,
            history_policy: HistoryPolicy::Fifo,
        }
    }

    /// Returns a copy with a different history-table size (ablation).
    pub fn with_history_entries(mut self, entries: usize) -> Self {
        self.history_entries = entries;
        self
    }

    /// Returns a copy with a different counter-table size (ablation).
    pub fn with_counter_entries(mut self, entries: usize) -> Self {
        self.counter_entries = entries;
        self
    }

    /// Returns a copy with a different `P_base` exponent (ablation).
    pub fn with_p_base_exponent(mut self, exponent: u32) -> Self {
        self.p_base_exponent = exponent;
        self
    }

    /// Returns a copy with a different CaPRoMi lock threshold (ablation).
    pub fn with_lock_threshold(mut self, threshold: u32) -> Self {
        self.lock_threshold = threshold;
        self
    }

    /// Returns a copy with a different history replacement policy
    /// (ablation).
    pub fn with_history_policy(mut self, policy: HistoryPolicy) -> Self {
        self.history_policy = policy;
        self
    }

    /// The refresh interval `f_r` in which the weight model assumes row
    /// `r` is refreshed (`r / RowsPI`; a right shift in hardware).
    #[inline]
    pub fn home_interval(&self, row: dram_sim::RowAddr) -> u32 {
        row.0 / self.rows_per_interval
    }

    /// Bits needed to store a row address.
    pub fn row_bits(&self) -> u32 {
        u32::BITS - (self.rows_per_bank - 1).leading_zeros()
    }

    /// Bits needed to store a refresh-interval index.
    pub fn interval_bits(&self) -> u32 {
        u32::BITS - (self.ref_int - 1).leading_zeros()
    }

    /// Storage of one history-table entry in bits:
    /// row address + trigger interval + valid bit.
    pub fn history_entry_bits(&self) -> u32 {
        self.row_bits() + self.interval_bits() + 1
    }

    /// History-table storage per bank in bits.
    ///
    /// For the paper configuration (65 536 rows, 8192 intervals, 32
    /// entries) this is 32 × (16 + 13 + 1) = 960 bits = 120 B, matching
    /// §IV.
    pub fn history_bits(&self) -> u64 {
        self.history_entries as u64 * u64::from(self.history_entry_bits())
    }

    /// Storage of one counter-table entry in bits: row address + 8-bit
    /// activation counter (bounded by the 165 activations/interval DDR4
    /// maximum) + lock bit + history-table *index* link (the paper links
    /// counter entries to "the matching address of the history table")
    /// + link-valid + valid.
    pub fn counter_entry_bits(&self) -> u32 {
        let history_index_bits = usize::BITS - (self.history_entries.max(2) - 1).leading_zeros();
        self.row_bits() + 8 + 1 + history_index_bits + 1 + 1
    }

    /// Counter-table storage per bank in bits.
    pub fn counter_bits(&self) -> u64 {
        self.counter_entries as u64 * u64::from(self.counter_entry_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::RowAddr;

    #[test]
    fn paper_history_is_120_bytes() {
        let c = TivaConfig::paper(&Geometry::paper());
        assert_eq!(c.row_bits(), 16);
        assert_eq!(c.interval_bits(), 13);
        assert_eq!(c.history_entry_bits(), 30);
        assert_eq!(c.history_bits(), 960);
        assert_eq!(c.history_bits() / 8, 120); // "a total size of 120 B"
    }

    #[test]
    fn paper_capromi_total_is_about_374_bytes() {
        // "The total storage overhead for CaPRoMi is only 374 B per 1 GB
        //  memory bank."  Our bit-accounting gives 120 B history + 256 B
        //  counters = 376 B — within two bytes of the paper.
        let c = TivaConfig::paper(&Geometry::paper());
        let total_bytes = (c.history_bits() + c.counter_bits()) as f64 / 8.0;
        assert!((total_bytes - 374.0).abs() <= 4.0, "got {total_bytes}");
    }

    #[test]
    fn home_interval_uses_rows_per_interval() {
        let c = TivaConfig::paper(&Geometry::paper());
        assert_eq!(c.home_interval(RowAddr(0)), 0);
        assert_eq!(c.home_interval(RowAddr(8)), 1);
        assert_eq!(c.home_interval(RowAddr(17)), 2);
    }

    #[test]
    fn builders_override_fields() {
        let c = TivaConfig::paper(&Geometry::paper())
            .with_history_entries(8)
            .with_counter_entries(16)
            .with_p_base_exponent(21)
            .with_lock_threshold(4);
        assert_eq!(c.history_entries, 8);
        assert_eq!(c.counter_entries, 16);
        assert_eq!(c.p_base_exponent, 21);
        assert_eq!(c.lock_threshold, 4);
    }

    #[test]
    fn bit_widths_scale_with_geometry() {
        let c = TivaConfig::paper(&Geometry::scaled_down(64));
        assert_eq!(c.row_bits(), 10); // 1024 rows
        assert_eq!(c.interval_bits(), 7); // 128 intervals
    }
}
