//! One-word probabilistic decision helpers shared by the scalar and
//! lane-kernel decision paths.
//!
//! The lane kernels prefetch whole runs of raw `u64` stream words
//! ([`crate::BankRngs::draw_block`]) and decide each event from its one
//! word; the scalar [`crate::Mitigation::on_activate`] paths pull the
//! same word per event directly from the stream and feed it to the same
//! helpers.  Both paths therefore consume per-bank streams identically
//! — one word per event — which is what keeps batched runs bit-identical
//! to the pinned scalar reference (DESIGN.md §15).
//!
//! The gate reproduces the `rand` shim's Bernoulli sampling exactly: the
//! word's 53 high bits become the uniform sample in `[0, 1)`, compared
//! against `p` in `f64`.  For loops with a fixed `p`, [`threshold`] /
//! [`gate_at`] hoist that compare into a precomputed integer bound —
//! *provably* equal to the float compare, because every step of the
//! reduction (the `2^53` scaling, the `ceil`) is exact in `f64`, so the
//! integer threshold introduces no rounding of its own.

/// One ulp of the 53-bit uniform sample: `2^-53`.
const UNIT: f64 = 1.0 / (1u64 << 53) as f64;

/// Bernoulli gate with probability `p` on a pre-drawn stream word.
///
/// Matches `RngExt::random_bool` evaluated on the same word: the top 53
/// bits map to `[0, 1)` and compare against `p`, with `p <= 0` and
/// `p >= 1` short-circuiting (the word is still consumed — the one-word
/// discipline draws unconditionally so run lengths alone determine
/// stream positions).
#[inline]
#[must_use]
pub fn gate(word: u64, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    (word >> 11) as f64 * UNIT < p
}

/// The integer gate bound for probability `p`: [`gate_at`]`(word,
/// threshold(p))` equals [`gate`]`(word, p)` for **every** word and
/// **every** `p`, so kernels with a loop-invariant probability hoist
/// the float compare out of the loop entirely.
///
/// Exactness: for `0 < p < 1` the gate tests `a·2⁻⁵³ < p` with
/// `a = word >> 11` an integer below `2⁵³`.  Multiplying both sides by
/// `2⁵³` (an exact power-of-two scaling in `f64`, even for subnormal
/// `p`) gives `a < p·2⁵³`, and for an integer `a` that is equivalent to
/// `a < ⌈p·2⁵³⌉` — `ceil` on an `f64` below `2⁵³` is also exact.  No
/// step rounds, so the two gates cannot disagree.
#[inline]
#[must_use]
pub fn threshold(p: f64) -> u64 {
    if p >= 1.0 {
        return 1u64 << 53;
    }
    if p <= 0.0 {
        return 0;
    }
    // Lossless: 0 < p < 1 bounds the product below 2⁵³ (see above).
    #[allow(clippy::cast_possible_truncation)]
    let bound = (p * (1u64 << 53) as f64).ceil() as u64;
    bound
}

/// Bernoulli gate against a precomputed [`threshold`] bound: one shift
/// and one integer compare per word.
#[inline]
#[must_use]
pub fn gate_at(word: u64, threshold: u64) -> bool {
    (word >> 11) < threshold
}

/// Direction bit for neighbor selection: bit 0 of the same word the
/// gate consumed — one word decides both whether and which way.
///
/// (The gate reads the 53 *high* bits, so the two decisions use
/// disjoint bits of the word and stay independent.)
#[inline]
#[must_use]
pub fn direction_up(word: u64) -> bool {
    word & 1 == 1
}

/// Uniform draw in `0..2^exponent` from a pre-drawn stream word —
/// identical to `random_range(0..(1 << exponent))`, whose modulo
/// reduction is a mask for power-of-two spans.
#[inline]
#[must_use]
pub fn masked(word: u64, exponent: u32) -> u64 {
    word & ((1u64 << exponent) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt, SeedableRng};

    #[test]
    fn gate_matches_random_bool_word_for_word() {
        for p in [0.0, 1e-9, 0.001, 0.25, 0.5, 0.999, 1.0] {
            let mut sampled = StdRng::seed_from_u64(5);
            let mut worded = StdRng::seed_from_u64(5);
            for _ in 0..2000 {
                // random_bool consumes no word at the clamped ends; the
                // one-word discipline always consumes, so only the
                // decision (not the stream position) is compared there.
                let word = worded.next_u64();
                if p > 0.0 && p < 1.0 {
                    assert_eq!(gate(word, p), sampled.random_bool(p));
                } else {
                    assert_eq!(gate(word, p), p >= 1.0);
                }
            }
        }
    }

    #[test]
    fn threshold_gate_equals_float_gate_everywhere() {
        let mut rng = StdRng::seed_from_u64(21);
        // Dense probability sweep plus adversarial points: clamped
        // ends, subnormals, values straddling exact 2^-53 multiples.
        let mut probs: Vec<f64> = vec![
            -1.0,
            0.0,
            f64::MIN_POSITIVE / 4.0,
            1e-300,
            UNIT,
            UNIT * 1.5,
            0.5 - UNIT,
            0.5,
            0.5 + UNIT,
            1.0 - UNIT,
            1.0,
            2.0,
        ];
        for i in 1..1000 {
            probs.push(f64::from(i) / 1000.0);
        }
        for &p in &probs {
            let t = threshold(p);
            for _ in 0..200 {
                let word = rng.next_u64();
                assert_eq!(gate_at(word, t), gate(word, p), "p={p} word={word}");
            }
            // The boundary words around the threshold itself (53-bit
            // samples only — `word >> 11` can never reach 2^53).
            for a in [t.saturating_sub(1), t, t.saturating_add(1)] {
                if a < (1u64 << 53) {
                    let word = a << 11;
                    assert_eq!(gate_at(word, t), gate(word, p), "p={p} edge a={a}");
                }
            }
        }
    }

    #[test]
    fn masked_matches_random_range_for_pow2_spans() {
        let mut ranged = StdRng::seed_from_u64(8);
        let mut worded = StdRng::seed_from_u64(8);
        for _ in 0..2000 {
            let want: u64 = ranged.random_range(0..(1u64 << 23));
            assert_eq!(masked(worded.next_u64(), 23), want);
        }
    }

    #[test]
    fn direction_splits_roughly_evenly_and_independently() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut ups = 0u32;
        let mut gated_ups = 0u32;
        let mut gated = 0u32;
        for _ in 0..10_000 {
            let word = rng.next_u64();
            if direction_up(word) {
                ups += 1;
            }
            if gate(word, 0.5) {
                gated += 1;
                if direction_up(word) {
                    gated_ups += 1;
                }
            }
        }
        assert!((4_500..5_500).contains(&ups), "ups {ups}");
        // Conditional on the gate, the direction still splits evenly.
        let ratio = f64::from(gated_ups) / f64::from(gated);
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
    }
}
