//! CaPRoMi's per-bank counter table.
//!
//! The counters track row activations *within one refresh interval* —
//! the table is sized between the DDR4 maximum of 165 activations per
//! interval and the measured average of 40 (64 entries in the paper) and
//! is drained at the end of every interval when the collective trigger
//! decisions are made.
//!
//! Replacement is random among *unlocked* entries: an entry whose counter
//! reached the lock threshold sets a lock bit and can no longer be
//! evicted, so a hammering row cannot be pushed out by table churn.  The
//! random replacement may land on a locked entry, in which case the
//! insertion simply fails (the FSM's "probabilistic replace failed"
//! transition in Fig. 3).

use dram_sim::RowAddr;
use rand::rngs::StdRng;
use rand::RngExt;

/// One counter-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterEntry {
    /// The tracked row.
    pub row: RowAddr,
    /// Activations of the row within the current refresh interval.
    pub count: u32,
    /// Lock bit: set once `count` reaches the lock threshold; locked
    /// entries cannot be replaced.
    pub locked: bool,
    /// Link to the row's history-table slot, if the row was found there
    /// when inserted ("the matching address of the history table is
    /// added to the counter table entry").
    pub history_slot: Option<usize>,
}

/// Outcome of an insertion attempt into a full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The row was already present; its counter was incremented.
    Incremented,
    /// The row was inserted into a free slot.
    Inserted,
    /// The table was full and a random unlocked entry was evicted.
    Replaced,
    /// The table was full and the randomly chosen victim was locked:
    /// the insertion failed (Fig. 3 "fail").
    ReplaceFailed,
}

/// Fixed-capacity activation counter table with lock-protected random
/// replacement.
///
/// ```
/// use tivapromi::{CounterTable, InsertOutcome};
/// use dram_sim::RowAddr;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut t = CounterTable::new(2, 3);
/// assert_eq!(t.observe(RowAddr(1), None, &mut rng), InsertOutcome::Inserted);
/// assert_eq!(t.observe(RowAddr(1), None, &mut rng), InsertOutcome::Incremented);
/// assert_eq!(t.entry(RowAddr(1)).unwrap().count, 2);
/// ```
#[derive(Debug, Clone)]
pub struct CounterTable {
    entries: Vec<CounterEntry>,
    capacity: usize,
    lock_threshold: u32,
}

impl CounterTable {
    /// Creates an empty table with the given capacity and lock threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `lock_threshold` is zero.
    pub fn new(capacity: usize, lock_threshold: u32) -> Self {
        assert!(capacity > 0, "counter table capacity must be nonzero");
        assert!(lock_threshold > 0, "lock threshold must be nonzero");
        CounterTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            lock_threshold,
        }
    }

    /// Processes one activation of `row`.
    ///
    /// * Row present → increment (and possibly lock).
    /// * Row absent, table not full → insert with count 1.
    /// * Row absent, table full → evict one *randomly chosen* entry if it
    ///   is unlocked, else fail.
    ///
    /// `history_slot` is the row's history-table link, captured by the
    /// parallel history search of the Fig. 3 FSM.
    pub fn observe(
        &mut self,
        row: RowAddr,
        history_slot: Option<usize>,
        rng: &mut StdRng,
    ) -> InsertOutcome {
        if let Some(e) = self.entries.iter_mut().find(|e| e.row == row) {
            e.count += 1;
            if e.count >= self.lock_threshold {
                e.locked = true;
            }
            // A history link discovered later (e.g. a trigger happened
            // since insertion) refreshes the stored link.
            if history_slot.is_some() {
                e.history_slot = history_slot;
            }
            return InsertOutcome::Incremented;
        }

        let fresh = CounterEntry {
            row,
            count: 1,
            locked: self.lock_threshold == 1,
            history_slot,
        };

        if self.entries.len() < self.capacity {
            self.entries.push(fresh);
            return InsertOutcome::Inserted;
        }

        // Full: probabilistic replacement — one random draw, fail on a
        // locked victim.
        let victim = rng.random_range(0..self.entries.len());
        if self.entries[victim].locked {
            InsertOutcome::ReplaceFailed
        } else {
            self.entries[victim] = fresh;
            InsertOutcome::Replaced
        }
    }

    /// The entry tracking `row`, if any.
    pub fn entry(&self, row: RowAddr) -> Option<&CounterEntry> {
        self.entries.iter().find(|e| e.row == row)
    }

    /// Iterates over all valid entries (the `ref`-side decision walk).
    pub fn iter(&self) -> impl Iterator<Item = &CounterEntry> {
        self.entries.iter()
    }

    /// Drains the table at the end of a refresh interval into `out`
    /// (cleared first), leaving the table empty for the next interval.
    ///
    /// Both the table's storage and `out` keep their capacity, so a
    /// steady-state caller reusing one scratch buffer drains without
    /// heap traffic — part of the allocation-free hot-loop contract
    /// (`tests/alloc_free.rs`).
    pub fn drain_into(&mut self, out: &mut Vec<CounterEntry>) {
        out.clear();
        out.append(&mut self.entries);
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured lock threshold.
    pub fn lock_threshold(&self) -> u32 {
        self.lock_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn insert_and_increment() {
        let mut rng = rng();
        let mut t = CounterTable::new(4, 10);
        assert_eq!(
            t.observe(RowAddr(1), None, &mut rng),
            InsertOutcome::Inserted
        );
        assert_eq!(
            t.observe(RowAddr(1), None, &mut rng),
            InsertOutcome::Incremented
        );
        assert_eq!(
            t.observe(RowAddr(2), None, &mut rng),
            InsertOutcome::Inserted
        );
        assert_eq!(t.entry(RowAddr(1)).unwrap().count, 2);
        assert_eq!(t.entry(RowAddr(2)).unwrap().count, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lock_engages_at_threshold() {
        let mut rng = rng();
        let mut t = CounterTable::new(4, 3);
        for _ in 0..2 {
            t.observe(RowAddr(5), None, &mut rng);
        }
        assert!(!t.entry(RowAddr(5)).unwrap().locked);
        t.observe(RowAddr(5), None, &mut rng);
        assert!(t.entry(RowAddr(5)).unwrap().locked);
    }

    #[test]
    fn locked_entries_survive_replacement_pressure() {
        let mut rng = rng();
        let mut t = CounterTable::new(2, 2);
        // Lock both entries.
        for _ in 0..2 {
            t.observe(RowAddr(1), None, &mut rng);
            t.observe(RowAddr(2), None, &mut rng);
        }
        assert!(t.entry(RowAddr(1)).unwrap().locked);
        assert!(t.entry(RowAddr(2)).unwrap().locked);
        // Any further insertion must fail: every victim is locked.
        for r in 10..50 {
            assert_eq!(
                t.observe(RowAddr(r), None, &mut rng),
                InsertOutcome::ReplaceFailed
            );
        }
        assert!(t.entry(RowAddr(1)).is_some());
        assert!(t.entry(RowAddr(2)).is_some());
    }

    #[test]
    fn unlocked_entries_are_eventually_replaced() {
        let mut rng = rng();
        let mut t = CounterTable::new(2, 100);
        t.observe(RowAddr(1), None, &mut rng);
        t.observe(RowAddr(2), None, &mut rng);
        let mut replaced = 0;
        for r in 10..60 {
            if t.observe(RowAddr(r), None, &mut rng) == InsertOutcome::Replaced {
                replaced += 1;
            }
        }
        assert!(replaced > 0, "unlocked entries must be replaceable");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn drain_empties_the_table_and_reuses_the_scratch() {
        let mut rng = rng();
        let mut t = CounterTable::new(4, 10);
        t.observe(RowAddr(1), None, &mut rng);
        t.observe(RowAddr(2), Some(3), &mut rng);
        let mut drained = Vec::new();
        t.drain_into(&mut drained);
        assert_eq!(drained.len(), 2);
        assert!(t.is_empty());
        assert_eq!(drained[1].history_slot, Some(3));
        // A stale scratch is cleared, not appended to.
        t.observe(RowAddr(9), None, &mut rng);
        t.drain_into(&mut drained);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].row, RowAddr(9));
    }

    #[test]
    fn history_link_is_stored_and_refreshed() {
        let mut rng = rng();
        let mut t = CounterTable::new(4, 10);
        t.observe(RowAddr(1), None, &mut rng);
        assert_eq!(t.entry(RowAddr(1)).unwrap().history_slot, None);
        t.observe(RowAddr(1), Some(7), &mut rng);
        assert_eq!(t.entry(RowAddr(1)).unwrap().history_slot, Some(7));
        // A later lookup miss does not erase the link.
        t.observe(RowAddr(1), None, &mut rng);
        assert_eq!(t.entry(RowAddr(1)).unwrap().history_slot, Some(7));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = CounterTable::new(0, 1);
    }
}
