//! The purely probabilistic variants: LiPRoMi, LoPRoMi, LoLiPRoMi.
//!
//! All three share one engine (they use the same FSM in the paper,
//! Fig. 2) and differ only in how the raw Eq. 1 weight is shaped in the
//! "calculate weight" state.

use crate::bank_rng::BankRngs;
use crate::config::TivaConfig;
use crate::draw;
use crate::history::HistoryTable;
use crate::mitigation::{ActionSink, Mitigation, MitigationAction};
use crate::weight::{linear_weight, log_weight};
use dram_sim::{BankId, RowAddr};
use mem_trace::EventBatch;
use rand::RngCore;
use std::ops::Range;

/// How the Eq. 1 weight is shaped before computing the probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightMode {
    /// LiPRoMi: use `w_r` directly.
    Linear,
    /// LoPRoMi: use `w_log = 2^⌈log2(w_r + 1)⌉` (Eq. 2).
    Logarithmic,
    /// LoLiPRoMi: linear when the row is in the history table (a trigger
    /// already happened recently, so the probability of needing another
    /// is low), logarithmic otherwise.
    Hybrid,
}

/// One memoised weight slot: the shaped weights of every row whose
/// phase `f_r = base % RefInt` equals the slot index, valid for the
/// stamped interval.
#[derive(Debug, Clone, Copy)]
struct SlotWeight {
    /// The interval this slot was computed for (`u32::MAX` = never).
    epoch: u32,
    /// Shaped weight when the row was found in the history table.
    hit: u32,
    /// Shaped weight on a history miss.
    miss: u32,
}

/// The precomputed per-row weight vector of the lane kernels, indexed
/// by refresh-slot phase `f_r`.
///
/// The shaped weight is a pure function of `(interval, f_r, mode)`, so
/// one vector of `RefInt` slots covers every row: each slot is filled
/// lazily the first time its phase is touched in an interval (epoch
/// stamp), and hammered rows — which repeat the same phase thousands of
/// times per interval — hit the memo on every subsequent event.  The
/// vector is allocated once at construction and never grows.
#[derive(Debug)]
struct SlotWeights {
    slots: Vec<SlotWeight>,
}

impl SlotWeights {
    fn new(ref_int: u32) -> Self {
        SlotWeights {
            slots: vec![
                SlotWeight {
                    epoch: u32::MAX,
                    hit: 0,
                    miss: 0,
                };
                ref_int as usize
            ],
        }
    }

    /// The `(hit, miss)` shaped weights of phase `f_r` at `interval`,
    /// recomputing the slot only when its epoch stamp is stale.
    #[inline]
    fn get(&mut self, interval: u32, f_r: u32, ref_int: u32, mode: WeightMode) -> (u32, u32) {
        let slot = &mut self.slots[f_r as usize];
        if slot.epoch != interval {
            let w = linear_weight(interval, f_r, ref_int);
            let (hit, miss) = match mode {
                WeightMode::Linear => (w, w),
                WeightMode::Logarithmic => (log_weight(w), log_weight(w)),
                WeightMode::Hybrid => (w, log_weight(w)),
            };
            *slot = SlotWeight {
                epoch: interval,
                hit,
                miss,
            };
        }
        (slot.hit, slot.miss)
    }
}

/// The shared engine of the three purely probabilistic TiVaPRoMi
/// variants.
///
/// On every activation of row `r` the engine computes the weight from
/// the current refresh interval and either the row's refresh slot
/// (`f_r = r / RowsPI`) or — if the row is in the per-bank history table
/// — the interval of the row's last triggered extra activation.  The
/// probability `p_r = weight · P_base` is realised in hardware style:
/// a uniform `p_base_exponent`-bit draw is compared against the weight.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct TimeVarying {
    config: TivaConfig,
    mode: WeightMode,
    histories: Vec<HistoryTable>,
    /// Current refresh interval within the window (`i` in Eq. 1).
    interval: u32,
    /// Per-bank LFSR streams — keyed by bank so each bank's draws depend
    /// only on that bank's traffic (bank-shardable determinism).
    rngs: BankRngs,
    /// Memoised shaped weights keyed by refresh-slot phase — the
    /// precomputed per-row weight vector both decision paths read.
    slot_weights: SlotWeights,
    name: &'static str,
    /// Total triggers issued (diagnostic).
    triggers: u64,
}

impl TimeVarying {
    /// Creates an engine with an explicit weight mode.
    pub fn new(config: TivaConfig, mode: WeightMode, seed: u64) -> Self {
        let name = match mode {
            WeightMode::Linear => "LiPRoMi",
            WeightMode::Logarithmic => "LoPRoMi",
            WeightMode::Hybrid => "LoLiPRoMi",
        };
        TimeVarying {
            histories: (0..config.banks)
                .map(|_| HistoryTable::with_policy(config.history_entries, config.history_policy))
                .collect(),
            mode,
            interval: 0,
            rngs: BankRngs::with_banks(seed, config.banks),
            slot_weights: SlotWeights::new(config.ref_int),
            name,
            triggers: 0,
            config,
        }
    }

    /// LiPRoMi: linear weighting (Section III-A).
    pub fn lipromi(config: TivaConfig, seed: u64) -> Self {
        TimeVarying::new(config, WeightMode::Linear, seed)
    }

    /// LoPRoMi: logarithmic weighting (Section III-B).
    pub fn lopromi(config: TivaConfig, seed: u64) -> Self {
        TimeVarying::new(config, WeightMode::Logarithmic, seed)
    }

    /// LoLiPRoMi: logarithmic/linear hybrid weighting (Section III-C).
    pub fn lolipromi(config: TivaConfig, seed: u64) -> Self {
        TimeVarying::new(config, WeightMode::Hybrid, seed)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TivaConfig {
        &self.config
    }

    /// The weight mode in effect.
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// Current refresh interval within the window.
    pub fn current_interval(&self) -> u32 {
        self.interval
    }

    /// Total extra activations triggered so far.
    pub fn trigger_count(&self) -> u64 {
        self.triggers
    }

    /// The effective (shaped) weight the engine would use for `row` in
    /// `bank` right now — exposed for analysis and the hardware model.
    pub fn effective_weight(&self, bank: BankId, row: RowAddr) -> u32 {
        let found = self.histories[bank.index()].lookup(row);
        let base = found.unwrap_or_else(|| self.config.home_interval(row));
        let w = linear_weight(
            self.interval,
            base % self.config.ref_int,
            self.config.ref_int,
        );
        match self.mode {
            WeightMode::Linear => w,
            WeightMode::Logarithmic => log_weight(w),
            WeightMode::Hybrid => {
                if found.is_some() {
                    w
                } else {
                    log_weight(w)
                }
            }
        }
    }
}

impl Mitigation for TimeVarying {
    fn name(&self) -> &str {
        self.name
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        // The FSM's table search; under LRU it also refreshes recency.
        let found = self.histories[bank.index()].search(row);
        let base = found.unwrap_or_else(|| self.config.home_interval(row));
        let (hit_w, miss_w) = self.slot_weights.get(
            self.interval,
            base % self.config.ref_int,
            self.config.ref_int,
            self.mode,
        );
        let weight = if found.is_some() { hit_w } else { miss_w };
        // Hardware-style Bernoulli draw: p = weight · 2^-exponent is
        // realised by comparing the weight against a uniform
        // `exponent`-bit pseudo-random number (an LFSR in the VHDL
        // implementation) — the masked low bits of one stream word, the
        // same one-word-per-event discipline the lane kernel prefetches.
        let word = self.rngs.get(bank).next_u64();
        if draw::masked(word, self.config.p_base_exponent) < u64::from(weight) {
            actions.push(MitigationAction::ActivateNeighbors { bank, row });
            self.histories[bank.index()].record(row, self.interval);
            self.triggers += 1;
        }
    }

    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        // Lane kernel: the interval clock, window length, mode and draw
        // mask are constant across a whole segment and hoisted; the
        // segment is walked in per-bank runs so the bank's history table
        // is resolved once per run and its stream words arrive in one
        // block refill (one word per event).  History searches stay
        // sequential — the LRU mutates — but the shaped weight comes
        // from the memoised slot vector.  State updates and stream
        // positions match the scalar path exactly — the determinism
        // contract depends on it.
        let interval = self.interval;
        let config = self.config;
        let exponent = config.p_base_exponent;
        let mode = self.mode;
        let (_, rows, _) = batch.columns();
        for (bank, run) in batch.bank_runs(range) {
            let words = self.rngs.draw_block(bank, run.len());
            let history = &mut self.histories[bank.index()];
            for (&word, i) in words.iter().zip(run) {
                let row = rows[i];
                let found = history.search(row);
                let base = match found {
                    Some(base) => base,
                    None => config.home_interval(row),
                };
                let (hit_w, miss_w) =
                    self.slot_weights
                        .get(interval, base % config.ref_int, config.ref_int, mode);
                let weight = if found.is_some() { hit_w } else { miss_w };
                if draw::masked(word, exponent) < u64::from(weight) {
                    // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
                    sink.push(i as u32, MitigationAction::ActivateNeighbors { bank, row });
                    history.record(row, interval);
                    self.triggers += 1;
                }
            }
        }
    }

    fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {
        self.interval += 1;
        if self.interval == self.config.ref_int {
            // New refresh window: weights restart and the history tables
            // are cleared (Fig. 2 "reset table" path).
            self.interval = 0;
            for h in &mut self.histories {
                h.clear();
            }
        }
    }

    fn storage_bits_per_bank(&self) -> u64 {
        self.config.history_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::Geometry;

    fn config() -> TivaConfig {
        TivaConfig::paper(&Geometry::paper().with_banks(1))
    }

    fn drive_intervals(m: &mut TimeVarying, n: u32) {
        let mut buf = Vec::new();
        for _ in 0..n {
            m.on_refresh_interval(&mut buf);
        }
    }

    #[test]
    fn weight_zero_right_after_refresh_slot() {
        // Row 0 has f_r = 0; at interval 0 its weight is 0, so an
        // activation can never trigger (draw < 0 is impossible).
        let mut m = TimeVarying::lipromi(config(), 1);
        let mut actions = Vec::new();
        for _ in 0..10_000 {
            m.on_activate(BankId(0), RowAddr(0), &mut actions);
        }
        assert!(actions.is_empty());
        assert_eq!(m.trigger_count(), 0);
    }

    #[test]
    fn stale_rows_trigger_with_growing_probability() {
        // Advance deep into the window; row 0's weight is now ~8000 and
        // p ≈ 10^-3, so 40 K activations almost surely trigger.
        let mut m = TimeVarying::lipromi(config(), 2);
        drive_intervals(&mut m, 8000);
        assert_eq!(m.effective_weight(BankId(0), RowAddr(0)), 8000);
        let mut actions = Vec::new();
        for _ in 0..40_000 {
            m.on_activate(BankId(0), RowAddr(0), &mut actions);
        }
        assert!(!actions.is_empty());
    }

    #[test]
    fn history_hit_shrinks_weight() {
        let mut m = TimeVarying::lipromi(config(), 3);
        drive_intervals(&mut m, 4000);
        let before = m.effective_weight(BankId(0), RowAddr(0));
        assert_eq!(before, 4000);
        // Force a trigger by hammering, then check the weight restarted.
        let mut actions = Vec::new();
        while actions.is_empty() {
            m.on_activate(BankId(0), RowAddr(0), &mut actions);
        }
        assert_eq!(m.effective_weight(BankId(0), RowAddr(0)), 0);
    }

    #[test]
    fn modes_shape_weight_as_specified() {
        let cfg = config();
        let li = TimeVarying::lipromi(cfg, 1);
        let lo = TimeVarying::lopromi(cfg, 1);
        let loli = TimeVarying::lolipromi(cfg, 1);
        // Row far from its refresh slot: f_r of row 65535 is 8191, so at
        // interval 0 the weight wraps to 0+8192-8191 = 1.
        let r = RowAddr(65_535);
        assert_eq!(li.effective_weight(BankId(0), r), 1);
        assert_eq!(lo.effective_weight(BankId(0), r), 2); // 2^ceil(log2(2))
                                                          // Not in history → hybrid behaves logarithmically.
        assert_eq!(loli.effective_weight(BankId(0), r), 2);
    }

    #[test]
    fn hybrid_switches_to_linear_on_history_hit() {
        let cfg = config();
        let mut m = TimeVarying::lolipromi(cfg, 5);
        drive_intervals(&mut m, 1000);
        let r = RowAddr(0);
        // Miss: logarithmic shaping of w=1000 → 1024.
        assert_eq!(m.effective_weight(BankId(0), r), 1024);
        // Trigger to insert into history.
        let mut actions = Vec::new();
        while actions.is_empty() {
            m.on_activate(BankId(0), r, &mut actions);
        }
        drive_intervals(&mut m, 100);
        // Hit: linear weight from the trigger interval (100), not 2^k.
        assert_eq!(m.effective_weight(BankId(0), r), 100);
    }

    #[test]
    fn window_wrap_clears_history_and_interval() {
        let cfg = config();
        let mut m = TimeVarying::lipromi(cfg, 6);
        drive_intervals(&mut m, 4000);
        let mut actions = Vec::new();
        while actions.is_empty() {
            m.on_activate(BankId(0), RowAddr(0), &mut actions);
        }
        assert_eq!(m.effective_weight(BankId(0), RowAddr(0)), 0);
        // Complete the window: interval wraps to 0 and history clears, so
        // the weight falls back to f_r-based (0 for row 0 at interval 0).
        drive_intervals(&mut m, cfg.ref_int - 4000);
        assert_eq!(m.current_interval(), 0);
        assert_eq!(m.effective_weight(BankId(0), RowAddr(0)), 0);
        // And a row with a late refresh slot is stale again.
        assert!(m.effective_weight(BankId(0), RowAddr(65_535)) >= 1);
    }

    #[test]
    fn trigger_rate_tracks_probability() {
        // At weight w the trigger probability is w·2^-23.  With w = 8000
        // and 100 K draws we expect ≈ 95 triggers; accept a wide band.
        let mut m = TimeVarying::lipromi(config(), 7);
        drive_intervals(&mut m, 8000);
        let mut actions = Vec::new();
        let mut hits = 0u32;
        for _ in 0..100_000 {
            m.on_activate(BankId(0), RowAddr(0), &mut actions);
            hits += actions.len() as u32;
            actions.clear();
            // Re-clear history so every draw uses the same weight.
            m.histories[0].clear();
        }
        let expected = 100_000.0 * 8000.0 / (1u64 << 23) as f64;
        assert!(
            (f64::from(hits) - expected).abs() < expected * 0.4,
            "hits {hits}, expected ≈ {expected:.1}"
        );
    }

    #[test]
    fn storage_is_history_only() {
        let m = TimeVarying::lipromi(config(), 1);
        assert_eq!(m.storage_bits_per_bank(), 960);
        assert!((m.storage_bytes_per_bank() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn batched_override_matches_scalar_path() {
        use mem_trace::TraceEvent;
        let cfg = config();
        for mode in [
            WeightMode::Linear,
            WeightMode::Logarithmic,
            WeightMode::Hybrid,
        ] {
            let mut scalar = TimeVarying::new(cfg, mode, 9);
            let mut batched = TimeVarying::new(cfg, mode, 9);
            drive_intervals(&mut scalar, 6000);
            drive_intervals(&mut batched, 6000);

            // One interval of mixed traffic, hot rows included.
            let events: Vec<TraceEvent> = (0..512)
                .map(|i| TraceEvent::benign(BankId(0), RowAddr([0, 123, 65_000][i % 3])))
                .collect();
            let mut batch = EventBatch::new();
            batch.push_interval(&events);

            let mut expected = Vec::new();
            for e in &events {
                scalar.on_activate(e.bank, e.row, &mut expected);
            }
            let mut sink = ActionSink::new();
            batched.on_batch(&batch, batch.segment(0), &mut sink);
            let mut got = Vec::new();
            for tag in 0..events.len() as u32 {
                while let Some(a) = sink.next_for(tag) {
                    got.push(a);
                }
            }
            assert_eq!(got, expected, "{mode:?} diverged");
            assert_eq!(scalar.trigger_count(), batched.trigger_count());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = config();
        let run = |seed| {
            let mut m = TimeVarying::lopromi(cfg, seed);
            drive_intervals(&mut m, 2000);
            let mut actions = Vec::new();
            for _ in 0..50_000 {
                m.on_activate(BankId(0), RowAddr(123), &mut actions);
            }
            actions.len()
        };
        assert_eq!(run(11), run(11));
    }
}
