//! # tivapromi — Time-Varying Probabilistic Row-Hammer Mitigation
//!
//! Implementation of the DATE 2021 paper *"TiVaPRoMi: Time-Varying
//! Probabilistic Row-Hammer Mitigation"* (Nassar, Bauer, Henkel).
//!
//! Classic probabilistic mitigations (PARA) trigger a neighbor refresh
//! with a *static* probability on every activation, paying a high rate of
//! unnecessary extra activations.  TiVaPRoMi instead scales the trigger
//! probability with a per-row *weight* `w_r` — the number of refresh
//! intervals since row `r` was last refreshed (Eq. 1) — so recently
//! restored rows barely ever trigger, while long-unrefreshed rows
//! approach PARA's protection level:
//!
//! ```text
//! p_r = w_r · P_base,        RefInt · P_base ≈ 0.001
//! ```
//!
//! A small per-bank FIFO **history table** remembers rows for which an
//! extra activation was already triggered, restarting their weight from
//! that point instead of from their refresh slot.  Four variants shape
//! the weight differently:
//!
//! * [`TimeVarying::lipromi`] — linear weighting (Eq. 1 verbatim).
//! * [`TimeVarying::lopromi`] — logarithmic weighting (Eq. 2,
//!   `2^⌈log2(w+1)⌉`), hardening the slow early ramp against flooding.
//! * [`TimeVarying::lolipromi`] — linear for rows found in the history
//!   table, logarithmic otherwise.
//! * [`CaPromi`] — counter-assisted: a small lockable counter table
//!   tracks activations within each refresh interval and decisions are
//!   taken collectively at interval end with `p = cnt · w_log · P_base`.
//!
//! The [`Mitigation`] trait defined here is also implemented by the five
//! state-of-the-art baselines in the `rh-baselines` crate, so the
//! experiment harness can drive all nine techniques identically.
//!
//! ## Example
//!
//! ```
//! use tivapromi::{Mitigation, TimeVarying, TivaConfig};
//! use dram_sim::{BankId, Geometry, RowAddr};
//!
//! let geometry = Geometry::paper();
//! let mut mitigation = TimeVarying::lipromi(TivaConfig::paper(&geometry), 42);
//!
//! // Hammer one aggressor row; the time-varying probability eventually
//! // triggers a neighbor activation.
//! let mut actions = Vec::new();
//! let mut triggered = 0;
//! for _interval in 0..2000 {
//!     for _ in 0..100 {
//!         mitigation.on_activate(BankId(0), RowAddr(4242), &mut actions);
//!         triggered += actions.len();
//!         actions.clear();
//!     }
//!     mitigation.on_refresh_interval(&mut actions);
//!     actions.clear();
//! }
//! assert!(triggered > 0, "an aggressor must eventually be caught");
//! ```

pub mod analysis;
pub mod bank_rng;
pub mod capromi;
pub mod config;
pub mod counter_table;
pub mod draw;
pub mod history;
pub mod mitigation;
pub mod time_varying;
pub mod weight;

pub use analysis::{HammerModel, RetriggerTail};
pub use bank_rng::BankRngs;
pub use capromi::CaPromi;
pub use config::TivaConfig;
pub use counter_table::{CounterEntry, CounterTable, InsertOutcome};
pub use history::{HistoryPolicy, HistoryTable};
pub use mitigation::{ActionSink, Mitigation, MitigationAction, WideNeighborhood};
pub use time_varying::{TimeVarying, WeightMode};
pub use weight::{linear_weight, log_weight};

/// The paper's base-probability exponent: `P_base = 2^-23`, chosen so
/// that `RefInt · P_base = 8192 · 2^-23 ≈ 9.8 · 10^-4`, bounding the
/// maximum per-activation probability near PARA's `p = 0.001`.
pub const P_BASE_EXPONENT: u32 = 23;

/// All four TiVaPRoMi variants, for iteration in experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TivaVariant {
    /// Linear weighting.
    LiPromi,
    /// Logarithmic weighting.
    LoPromi,
    /// Logarithmic/linear hybrid weighting.
    LoLiPromi,
    /// Counter-assisted weighting.
    CaPromi,
}

impl TivaVariant {
    /// All variants in the order used by the paper's tables.
    pub const ALL: [TivaVariant; 4] = [
        TivaVariant::CaPromi,
        TivaVariant::LoLiPromi,
        TivaVariant::LoPromi,
        TivaVariant::LiPromi,
    ];

    /// Instantiates the variant as a boxed [`Mitigation`].
    ///
    /// ```
    /// use tivapromi::{TivaConfig, TivaVariant};
    /// use dram_sim::Geometry;
    ///
    /// let config = TivaConfig::paper(&Geometry::paper());
    /// let m = TivaVariant::CaPromi.build(config, 1);
    /// assert_eq!(m.name(), "CaPRoMi");
    /// ```
    pub fn build(self, config: TivaConfig, seed: u64) -> Box<dyn Mitigation> {
        match self {
            TivaVariant::LiPromi => Box::new(TimeVarying::lipromi(config, seed)),
            TivaVariant::LoPromi => Box::new(TimeVarying::lopromi(config, seed)),
            TivaVariant::LoLiPromi => Box::new(TimeVarying::lolipromi(config, seed)),
            TivaVariant::CaPromi => Box::new(CaPromi::new(config, seed)),
        }
    }

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            TivaVariant::LiPromi => "LiPRoMi",
            TivaVariant::LoPromi => "LoPRoMi",
            TivaVariant::LoLiPromi => "LoLiPRoMi",
            TivaVariant::CaPromi => "CaPRoMi",
        }
    }
}

impl std::fmt::Display for TivaVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(TivaVariant::LiPromi.to_string(), "LiPRoMi");
        assert_eq!(TivaVariant::LoPromi.to_string(), "LoPRoMi");
        assert_eq!(TivaVariant::LoLiPromi.to_string(), "LoLiPRoMi");
        assert_eq!(TivaVariant::CaPromi.to_string(), "CaPRoMi");
    }

    #[test]
    fn all_variants_build() {
        let g = dram_sim::Geometry::scaled_down(64);
        for v in TivaVariant::ALL {
            let m = v.build(TivaConfig::paper(&g), 1);
            assert_eq!(m.name(), v.name());
            assert!(m.storage_bits_per_bank() > 0);
        }
    }

    #[test]
    fn p_base_bound_matches_table_i() {
        // RefInt · P_base = 8192 · 2^-23 ≈ 9.8 · 10^-4
        let bound = 8192.0 * (2f64).powi(-(P_BASE_EXPONENT as i32));
        assert!((bound - 9.8e-4).abs() < 1e-5);
    }
}
