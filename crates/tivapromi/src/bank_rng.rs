//! Per-bank pseudo-random streams for probabilistic mitigations.
//!
//! Every probabilistic technique in this workspace keys its random draws
//! by the bank being processed instead of consuming one undivided
//! stream.  Because DRAM banks are independent — no disturbance couples
//! them and all mitigation state is per-bank — this makes a mitigation's
//! behaviour on bank *b* a function of bank *b*'s traffic alone.  That is
//! the property the bank-sharded run engine relies on: a mitigation
//! instance that only ever sees bank *b* draws exactly the stream the
//! same instance would have used for bank *b* in a sequential all-banks
//! run.

use dram_sim::{bank_seed, BankId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A lazily-grown pool of per-bank [`StdRng`] streams, all derived from
/// one construction seed via [`bank_seed`].
///
/// ```
/// use tivapromi::BankRngs;
/// use dram_sim::BankId;
/// use rand::RngExt;
///
/// let mut rngs = BankRngs::new(9);
/// let a: u64 = rngs.get(BankId(0)).random();
/// let b: u64 = rngs.get(BankId(1)).random();
/// assert_ne!(a, b);
/// // Streams advance independently per bank.
/// let mut fresh = BankRngs::new(9);
/// assert_eq!(fresh.get(BankId(1)).random::<u64>(), b);
/// ```
#[derive(Debug)]
pub struct BankRngs {
    seed: u64,
    rngs: Vec<Option<StdRng>>,
}

impl BankRngs {
    /// Creates an empty pool; streams are created on first use.
    pub fn new(seed: u64) -> Self {
        BankRngs {
            seed,
            rngs: Vec::new(),
        }
    }

    /// The construction seed the per-bank streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pseudo-random stream of `bank`.
    pub fn get(&mut self, bank: BankId) -> &mut StdRng {
        let index = bank.index();
        if index >= self.rngs.len() {
            self.rngs.resize_with(index + 1, || None);
        }
        self.rngs[index].get_or_insert_with(|| StdRng::seed_from_u64(bank_seed(self.seed, bank)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn streams_are_independent_of_access_order() {
        let mut forward = BankRngs::new(3);
        let f0: u64 = forward.get(BankId(0)).random();
        let f1: u64 = forward.get(BankId(1)).random();

        let mut reverse = BankRngs::new(3);
        let r1: u64 = reverse.get(BankId(1)).random();
        let r0: u64 = reverse.get(BankId(0)).random();

        assert_eq!(f0, r0);
        assert_eq!(f1, r1);
    }

    #[test]
    fn untouched_banks_do_not_perturb_others() {
        let mut sparse = BankRngs::new(4);
        let high: u64 = sparse.get(BankId(13)).random();
        let mut dense = BankRngs::new(4);
        for b in 0..14 {
            let _ = dense.get(BankId(b));
        }
        assert_eq!(dense.get(BankId(13)).random::<u64>(), high);
    }
}
