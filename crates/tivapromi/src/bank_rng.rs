//! Per-bank pseudo-random streams for probabilistic mitigations.
//!
//! Every probabilistic technique in this workspace keys its random draws
//! by the bank being processed instead of consuming one undivided
//! stream.  Because DRAM banks are independent — no disturbance couples
//! them and all mitigation state is per-bank — this makes a mitigation's
//! behaviour on bank *b* a function of bank *b*'s traffic alone.  That is
//! the property the bank-sharded run engine relies on: a mitigation
//! instance that only ever sees bank *b* draws exactly the stream the
//! same instance would have used for bank *b* in a sequential all-banks
//! run.
//!
//! The pool is *dense*: [`BankRngs::with_banks`] seeds every bank's
//! stream eagerly at construction (one-time cost when the technique is
//! built), so the hot path indexes a flat `Vec<StdRng>` with no
//! `Option` branch.  Streams are a pure function of `(seed, bank)` via
//! [`bank_seed`], so a pool can still grow past its eager count (tests
//! and ad-hoc tools address arbitrary banks) without perturbing any
//! existing stream.
//!
//! For the lane-parallel kernels, [`BankRngs::draw_block`] refills a
//! reused scratch buffer with a whole run's worth of raw `u64` draws in
//! one call.  The block is read front to back, so the per-bank stream
//! consumption order is exactly what per-event draws would have
//! produced — block refill is a batching transparency, not a semantic
//! change (DESIGN.md §15).

use dram_sim::{bank_seed, BankId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A dense pool of per-bank [`StdRng`] streams, all derived from one
/// construction seed via [`bank_seed`].
///
/// ```
/// use tivapromi::BankRngs;
/// use dram_sim::BankId;
/// use rand::RngExt;
///
/// let mut rngs = BankRngs::new(9);
/// let a: u64 = rngs.get(BankId(0)).random();
/// let b: u64 = rngs.get(BankId(1)).random();
/// assert_ne!(a, b);
/// // Streams advance independently per bank.
/// let mut fresh = BankRngs::new(9);
/// assert_eq!(fresh.get(BankId(1)).random::<u64>(), b);
/// ```
#[derive(Debug)]
pub struct BankRngs {
    seed: u64,
    rngs: Vec<StdRng>,
    /// Reused block buffer for [`BankRngs::draw_block`]; capacity grows
    /// to the largest run seen, then every refill is allocation-free.
    scratch: Vec<u64>,
}

impl BankRngs {
    /// Creates a pool with no eagerly-seeded banks; streams are created
    /// on first use (kept for tests and tools that address arbitrary
    /// banks — technique constructors use [`BankRngs::with_banks`]).
    pub fn new(seed: u64) -> Self {
        Self::with_banks(seed, 0)
    }

    /// Creates a pool with the streams of banks `0..banks` seeded
    /// eagerly — the one-time construction cost that keeps the hot path
    /// a branch-free dense index.
    pub fn with_banks(seed: u64, banks: u32) -> Self {
        let mut rngs = Vec::with_capacity(banks as usize);
        for bank in 0..banks {
            rngs.push(StdRng::seed_from_u64(bank_seed(seed, BankId(bank))));
        }
        BankRngs {
            seed,
            rngs,
            scratch: Vec::with_capacity(0),
        }
    }

    /// The construction seed the per-bank streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Grows the dense pool to cover `bank`, returning its index.
    ///
    /// Each appended stream is seeded purely from `(seed, bank)`, so
    /// growth order cannot perturb any stream.  Eagerly-constructed
    /// pools never take the growth branch in steady state.
    #[inline]
    fn ensure(&mut self, bank: BankId) -> usize {
        let index = bank.index();
        while self.rngs.len() <= index {
            let next = u32::try_from(self.rngs.len()).expect("bank count fits u32");
            self.rngs
                .push(StdRng::seed_from_u64(bank_seed(self.seed, BankId(next))));
        }
        index
    }

    /// The pseudo-random stream of `bank`.
    #[inline]
    pub fn get(&mut self, bank: BankId) -> &mut StdRng {
        let index = self.ensure(bank);
        &mut self.rngs[index]
    }

    /// Refills the shared scratch block with the next `n` raw `u64`
    /// draws of `bank`'s stream and returns it — one stream refill per
    /// run for the lane kernels, consumed front to back in exactly the
    /// order per-event draws would have produced.
    #[inline]
    pub fn draw_block(&mut self, bank: BankId, n: usize) -> &[u64] {
        let index = self.ensure(bank);
        let rng = &mut self.rngs[index];
        let scratch = &mut self.scratch;
        scratch.clear();
        scratch.reserve(n);
        for _ in 0..n {
            scratch.push(rng.next_u64());
        }
        scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn streams_are_independent_of_access_order() {
        let mut forward = BankRngs::new(3);
        let f0: u64 = forward.get(BankId(0)).random();
        let f1: u64 = forward.get(BankId(1)).random();

        let mut reverse = BankRngs::new(3);
        let r1: u64 = reverse.get(BankId(1)).random();
        let r0: u64 = reverse.get(BankId(0)).random();

        assert_eq!(f0, r0);
        assert_eq!(f1, r1);
    }

    #[test]
    fn untouched_banks_do_not_perturb_others() {
        let mut sparse = BankRngs::new(4);
        let high: u64 = sparse.get(BankId(13)).random();
        let mut dense = BankRngs::new(4);
        for b in 0..14 {
            let _ = dense.get(BankId(b));
        }
        assert_eq!(dense.get(BankId(13)).random::<u64>(), high);
    }

    #[test]
    fn eager_pool_matches_lazy_pool() {
        let mut eager = BankRngs::with_banks(7, 4);
        let mut lazy = BankRngs::new(7);
        for b in (0..4).rev() {
            assert_eq!(
                eager.get(BankId(b)).random::<u64>(),
                lazy.get(BankId(b)).random::<u64>()
            );
        }
        // Addressing past the eager count still works and agrees.
        assert_eq!(
            eager.get(BankId(9)).random::<u64>(),
            lazy.get(BankId(9)).random::<u64>()
        );
    }

    #[test]
    fn draw_block_preserves_per_bank_stream_order() {
        let mut blocked = BankRngs::with_banks(11, 2);
        let mut scalar = BankRngs::with_banks(11, 2);
        // Interleave block refills across banks; each bank's draws must
        // be the same sequence per-event draws produce.
        let a: Vec<u64> = blocked.draw_block(BankId(0), 3).to_vec();
        let b: Vec<u64> = blocked.draw_block(BankId(1), 2).to_vec();
        let a2: Vec<u64> = blocked.draw_block(BankId(0), 2).to_vec();
        let want_a: Vec<u64> = (0..5).map(|_| scalar.get(BankId(0)).next_u64()).collect();
        let want_b: Vec<u64> = (0..2).map(|_| scalar.get(BankId(1)).next_u64()).collect();
        assert_eq!([a, a2].concat(), want_a);
        assert_eq!(b, want_b);
        // An empty block is legal and draws nothing.
        assert_eq!(blocked.draw_block(BankId(0), 0).len(), 0);
    }
}
