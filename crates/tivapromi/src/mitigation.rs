//! The mitigation interface shared by TiVaPRoMi and every baseline.
//!
//! A mitigation sits next to the memory controller (Fig. 1) and observes
//! two command streams: row activations (`act`, per bank) and refresh
//! commands (`ref`, device-wide).  In response it may ask the controller
//! to issue extra restorative activations.

use dram_sim::{BankId, RowAddr};
use mem_trace::EventBatch;
use std::ops::Range;

/// An extra command a mitigation asks the memory controller to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationAction {
    /// Issue `act_n`: activate both physical neighbors of `row`
    /// (TiVaPRoMi's interrupt path, also used by TWiCe and CRA).  Costs
    /// two extra activations on interior rows.
    ActivateNeighbors {
        /// Bank of the aggressor row.
        bank: BankId,
        /// The aggressor whose neighbors are restored.
        row: RowAddr,
    },
    /// Refresh one explicit victim row (PARA, ProHit, MRLoc style).
    /// Costs one extra activation.
    RefreshRow {
        /// Bank of the victim row.
        bank: BankId,
        /// The victim row to restore.
        row: RowAddr,
    },
}

impl MitigationAction {
    /// The bank the action addresses.
    pub fn bank(&self) -> BankId {
        match self {
            MitigationAction::ActivateNeighbors { bank, .. }
            | MitigationAction::RefreshRow { bank, .. } => *bank,
        }
    }

    /// The row the action names (aggressor for `ActivateNeighbors`,
    /// victim for `RefreshRow`).
    pub fn row(&self) -> RowAddr {
        match self {
            MitigationAction::ActivateNeighbors { row, .. }
            | MitigationAction::RefreshRow { row, .. } => *row,
        }
    }

    /// Converts the action to the DRAM command the controller issues.
    pub fn to_command(self) -> dram_sim::Command {
        match self {
            MitigationAction::ActivateNeighbors { bank, row } => {
                dram_sim::Command::ActivateNeighbors { bank, row }
            }
            MitigationAction::RefreshRow { bank, row } => {
                dram_sim::Command::RefreshRow { bank, row }
            }
        }
    }
}

/// Action arena of the batched hot path: every action a mitigation
/// emits while processing an [`EventBatch`] segment is tagged with the
/// index of the event that caused it.
///
/// The tag is what lets the driving harness *decide ahead, apply in
/// order*: a mitigation processes a whole interval segment in one call
/// (amortising dispatch and letting it hoist per-interval state), and
/// the harness then replays the segment event by event, applying each
/// event's actions to the device immediately after that event's
/// activation — the exact order the one-event-at-a-time path used, so
/// results stay bit-identical.  Tags must be pushed in ascending order,
/// which falls out naturally from walking the segment front to back.
///
/// The sink is a reusable bump-arena: the tag and action lanes are
/// parallel buffers that only ever grow, [`ActionSink::reset`] rewinds
/// the bump cursor without releasing them, and [`ActionSink::push`]
/// writes into the retained lanes.  After the first few segments have
/// established a high-water mark, a steady-state segment performs zero
/// heap allocations — the contract `tests/alloc_free.rs` enforces with
/// a counting allocator (DESIGN.md §15).
#[derive(Debug, Default)]
pub struct ActionSink {
    actions: Vec<MitigationAction>,
    tags: Vec<u32>,
    cursor: usize,
}

impl ActionSink {
    /// An empty sink.
    pub fn new() -> Self {
        ActionSink::default()
    }

    /// An empty sink with both lanes preallocated for `capacity`
    /// actions — skips the warm-up growth entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        ActionSink {
            actions: Vec::with_capacity(capacity),
            tags: Vec::with_capacity(capacity),
            cursor: 0,
        }
    }

    /// Rewinds the arena for the next segment: drops all actions and
    /// resets the drain cursor, keeping both lanes' capacity.
    pub fn reset(&mut self) {
        self.actions.clear();
        self.tags.clear();
        self.cursor = 0;
    }

    /// Alias of [`ActionSink::reset`], kept for call sites that predate
    /// the arena vocabulary.
    pub fn clear(&mut self) {
        self.reset();
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the sink holds no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Buffers `action` as caused by the event at batch index `tag`.
    #[inline]
    pub fn push(&mut self, tag: u32, action: MitigationAction) {
        debug_assert!(
            self.tags.last().is_none_or(|&last| last <= tag),
            "actions must be pushed in ascending event order"
        );
        self.actions.push(action);
        self.tags.push(tag);
    }

    /// Runs `fill` against a plain action `Vec` and tags everything it
    /// appended with `tag` — the bridge from the scalar
    /// [`Mitigation::on_activate`] signature.
    #[inline]
    pub fn record<F: FnOnce(&mut Vec<MitigationAction>)>(&mut self, tag: u32, fill: F) {
        fill(&mut self.actions);
        self.tags.resize(self.actions.len(), tag);
    }

    /// The tag of the next undrained action, if any — lets a batching
    /// replay jump straight to the next event that has actions instead
    /// of polling every event.
    #[inline]
    pub fn peek_tag(&self) -> Option<u32> {
        self.tags.get(self.cursor).copied()
    }

    /// Drains the next action if it is tagged with event `tag`.
    ///
    /// The harness calls this in its replay walk; because tags ascend,
    /// a single forward cursor visits every action exactly once.
    #[inline]
    pub fn next_for(&mut self, tag: u32) -> Option<MitigationAction> {
        if self.cursor < self.tags.len() && self.tags[self.cursor] == tag {
            let action = self.actions[self.cursor];
            self.cursor += 1;
            Some(action)
        } else {
            None
        }
    }

    /// Whether the replay walk consumed every buffered action.
    pub fn fully_drained(&self) -> bool {
        self.cursor == self.actions.len()
    }
}

/// A hardware row-hammer mitigation observing the command stream.
///
/// Implementations append the commands they want issued to `actions`
/// (an out-buffer so the per-activation hot path performs no allocation).
/// The driving harness applies each action to the DRAM device and charges
/// it to the technique's activation overhead.
///
/// Implementors must be deterministic given their construction seed: the
/// experiment harness relies on reproducible runs.
///
/// Implementing a custom technique takes a handful of lines — here is a
/// toy "refresh every 1000th activated row's neighbors" policy:
///
/// ```
/// use dram_sim::{BankId, RowAddr};
/// use tivapromi::{Mitigation, MitigationAction};
///
/// struct EveryNth {
///     n: u64,
///     count: u64,
/// }
///
/// impl Mitigation for EveryNth {
///     fn name(&self) -> &str {
///         "every-nth"
///     }
///     fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
///         self.count += 1;
///         if self.count % self.n == 0 {
///             actions.push(MitigationAction::ActivateNeighbors { bank, row });
///         }
///     }
///     fn on_refresh_interval(&mut self, _actions: &mut Vec<MitigationAction>) {}
///     fn storage_bits_per_bank(&self) -> u64 {
///         64 // the counter
///     }
/// }
///
/// let mut m = EveryNth { n: 1000, count: 0 };
/// let mut actions = Vec::new();
/// for _ in 0..1000 {
///     m.on_activate(BankId(0), RowAddr(7), &mut actions);
/// }
/// assert_eq!(actions.len(), 1);
/// ```
pub trait Mitigation: Send {
    /// Human-readable technique name ("PARA", "LoLiPRoMi", …).
    fn name(&self) -> &str;

    /// Called for every workload activation of `row` in `bank`.
    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>);

    /// Called once per refresh interval, *after* the interval's refresh
    /// executed.  Implementations advance their interval clock here;
    /// window wrap-around (table resets) is handled internally.
    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>);

    /// Storage the technique requires per memory bank, in bits — the
    /// x-axis of Fig. 4.  Stateless techniques (PARA) return 0.
    fn storage_bits_per_bank(&self) -> u64;

    /// Processes one refresh interval's worth of activations — the
    /// events of `batch` at `range` — in a single call, pushing every
    /// resulting action into `sink` tagged with its causing event's
    /// batch index.
    ///
    /// The default fans out to [`Mitigation::on_activate`] per event,
    /// so every technique batches correctly without changes.
    /// Overriding implementations may hoist per-interval work (the
    /// time-varying weight, PARA's probability bound) out of the
    /// per-event loop, but must preserve the *exact* per-event order of
    /// state updates and RNG draws: the engine's determinism contract
    /// (sequential ≡ sharded, batched ≡ scalar) depends on it.
    // Hot path: segment event indices are bounded by the batch length,
    // far below u32::MAX.
    #[allow(clippy::cast_possible_truncation)]
    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        for i in range {
            let (bank, row) = (batch.bank(i), batch.row(i));
            // lint: allow(D5) — event tag: segment indices are bounded by the batch length.
            sink.record(i as u32, |actions| self.on_activate(bank, row, actions));
        }
    }

    /// Storage per bank in bytes (derived; Fig. 4 is plotted in bytes).
    fn storage_bytes_per_bank(&self) -> f64 {
        self.storage_bits_per_bank() as f64 / 8.0
    }
}

impl<M: Mitigation + ?Sized> Mitigation for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        (**self).on_activate(bank, row, actions)
    }

    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>) {
        (**self).on_refresh_interval(actions)
    }

    fn storage_bits_per_bank(&self) -> u64 {
        (**self).storage_bits_per_bank()
    }

    fn on_batch(&mut self, batch: &EventBatch, range: Range<usize>, sink: &mut ActionSink) {
        (**self).on_batch(batch, range, sink)
    }
}

/// Adapter widening any mitigation's restorative reach to distance two.
///
/// The paper-era `act_n` restores a suspected aggressor's *immediate*
/// neighbors.  On devices with measurable distance-2 coupling (the
/// blast-radius extension of `dram-sim`), rows two away from a hammered
/// row accumulate disturbance that no ±1 refresh ever clears.  This
/// adapter rewrites every [`MitigationAction::ActivateNeighbors`] into
/// explicit refreshes of the rows at distance one *and* two — doubling
/// that action's activation cost, which the harness charges honestly.
///
/// ```
/// use tivapromi::{Mitigation, TimeVarying, TivaConfig, WideNeighborhood};
/// use dram_sim::Geometry;
///
/// let geometry = Geometry::paper();
/// let inner = TimeVarying::lopromi(TivaConfig::paper(&geometry), 1);
/// let wide = WideNeighborhood::new(inner, geometry.rows_per_bank());
/// assert_eq!(wide.name(), "LoPRoMi+d2");
/// ```
#[derive(Debug)]
pub struct WideNeighborhood<M> {
    inner: M,
    rows_per_bank: u32,
    name: String,
    /// Rewrite staging reused across calls so widening allocates only
    /// until its high-water mark is established.
    scratch: Vec<MitigationAction>,
}

impl<M: Mitigation> WideNeighborhood<M> {
    /// Wraps `inner`, widening its `act_n` actions to ±2.
    pub fn new(inner: M, rows_per_bank: u32) -> Self {
        let name = format!("{}+d2", inner.name());
        WideNeighborhood {
            inner,
            rows_per_bank,
            name,
            scratch: Vec::with_capacity(8),
        }
    }

    /// The wrapped mitigation.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped mitigation.
    pub fn into_inner(self) -> M {
        self.inner
    }

    fn widen(&mut self, actions: &mut Vec<MitigationAction>, start: usize) {
        let widened = &mut self.scratch;
        widened.clear();
        for action in actions.drain(start..) {
            match action {
                MitigationAction::ActivateNeighbors { bank, row } => {
                    for offset in [-2i64, -1, 1, 2] {
                        let target = i64::from(row.0) + offset;
                        // try_from rejects negatives and overflow in one go.
                        if let Ok(target) = u32::try_from(target) {
                            if target < self.rows_per_bank {
                                widened.push(MitigationAction::RefreshRow {
                                    bank,
                                    row: RowAddr(target),
                                });
                            }
                        }
                    }
                }
                other => widened.push(other),
            }
        }
        actions.append(widened);
    }
}

impl<M: Mitigation> Mitigation for WideNeighborhood<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
        let start = actions.len();
        self.inner.on_activate(bank, row, actions);
        self.widen(actions, start);
    }

    fn on_refresh_interval(&mut self, actions: &mut Vec<MitigationAction>) {
        let start = actions.len();
        self.inner.on_refresh_interval(actions);
        self.widen(actions, start);
    }

    fn storage_bits_per_bank(&self) -> u64 {
        self.inner.storage_bits_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_accessors() {
        let a = MitigationAction::ActivateNeighbors {
            bank: BankId(1),
            row: RowAddr(2),
        };
        assert_eq!(a.bank(), BankId(1));
        assert_eq!(a.row(), RowAddr(2));
        assert!(matches!(
            a.to_command(),
            dram_sim::Command::ActivateNeighbors { .. }
        ));

        let r = MitigationAction::RefreshRow {
            bank: BankId(0),
            row: RowAddr(7),
        };
        assert_eq!(r.row(), RowAddr(7));
        assert!(matches!(
            r.to_command(),
            dram_sim::Command::RefreshRow { .. }
        ));
    }

    struct Fixed;
    impl Mitigation for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn on_activate(&mut self, bank: BankId, row: RowAddr, actions: &mut Vec<MitigationAction>) {
            actions.push(MitigationAction::ActivateNeighbors { bank, row });
        }
        fn on_refresh_interval(&mut self, _: &mut Vec<MitigationAction>) {}
        fn storage_bits_per_bank(&self) -> u64 {
            7
        }
    }

    #[test]
    fn sink_tags_and_replays_in_event_order() {
        let mut sink = ActionSink::new();
        let act = |row| MitigationAction::RefreshRow {
            bank: BankId(0),
            row: RowAddr(row),
        };
        sink.push(0, act(10));
        sink.record(2, |actions| {
            actions.push(act(20));
            actions.push(act(21));
        });
        assert_eq!(sink.len(), 3);
        // Replay walk: event 0 yields one action, event 1 none, event 2
        // both of its actions, in push order.
        assert_eq!(sink.next_for(0), Some(act(10)));
        assert_eq!(sink.next_for(0), None);
        assert_eq!(sink.next_for(1), None);
        assert_eq!(sink.next_for(2), Some(act(20)));
        assert_eq!(sink.next_for(2), Some(act(21)));
        assert_eq!(sink.next_for(2), None);
        assert!(sink.fully_drained());
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn default_on_batch_matches_per_event_calls() {
        use mem_trace::TraceEvent;
        let events = vec![
            TraceEvent::benign(BankId(0), RowAddr(3)),
            TraceEvent::benign(BankId(1), RowAddr(4)),
        ];
        let mut batch = EventBatch::new();
        batch.push_interval(&events);

        let mut batched = Fixed;
        let mut sink = ActionSink::new();
        batched.on_batch(&batch, batch.segment(0), &mut sink);

        let mut scalar = Fixed;
        let mut expected = Vec::new();
        for e in &events {
            scalar.on_activate(e.bank, e.row, &mut expected);
        }
        let mut drained = Vec::new();
        for tag in 0..events.len() as u32 {
            while let Some(a) = sink.next_for(tag) {
                drained.push(a);
            }
        }
        assert_eq!(drained, expected);
        assert!(sink.fully_drained());
    }

    #[test]
    fn wide_neighborhood_expands_act_n() {
        let mut wide = WideNeighborhood::new(Fixed, 64);
        assert_eq!(wide.name(), "fixed+d2");
        assert_eq!(wide.storage_bits_per_bank(), 7);
        let mut actions = Vec::new();
        wide.on_activate(BankId(0), RowAddr(10), &mut actions);
        let rows: Vec<u32> = actions.iter().map(|a| a.row().0).collect();
        assert_eq!(rows, vec![8, 9, 11, 12]);
        assert!(actions
            .iter()
            .all(|a| matches!(a, MitigationAction::RefreshRow { .. })));
    }

    #[test]
    fn wide_neighborhood_clips_at_bank_edges() {
        let mut wide = WideNeighborhood::new(Fixed, 64);
        let mut actions = Vec::new();
        wide.on_activate(BankId(0), RowAddr(0), &mut actions);
        let rows: Vec<u32> = actions.iter().map(|a| a.row().0).collect();
        assert_eq!(rows, vec![1, 2]);
        actions.clear();
        wide.on_activate(BankId(0), RowAddr(63), &mut actions);
        let rows: Vec<u32> = actions.iter().map(|a| a.row().0).collect();
        assert_eq!(rows, vec![61, 62]);
    }

    #[test]
    fn wide_neighborhood_preserves_earlier_actions() {
        let mut wide = WideNeighborhood::new(Fixed, 64);
        let mut actions = vec![MitigationAction::RefreshRow {
            bank: BankId(1),
            row: RowAddr(5),
        }];
        wide.on_activate(BankId(0), RowAddr(10), &mut actions);
        assert_eq!(actions.len(), 5);
        assert_eq!(actions[0].row(), RowAddr(5));
        assert_eq!(wide.inner().storage_bits_per_bank(), 7);
        let _ = wide.into_inner();
    }
}
