//! Closed-form analysis of the time-varying probability process.
//!
//! The simulator measures; this module *predicts*.  For a row hammered
//! at a constant rate `r` activations per refresh interval, the trigger
//! process is a discrete-time inhomogeneous Bernoulli process with
//! per-activation probability `p(i) = shape(w(i)) · P_base`, where the
//! weight `w(i)` grows by one per interval since the row's last refresh
//! or last triggered extra activation.  Closed forms for the expected
//! number of triggers and the expected first-trigger point let the test
//! suite cross-validate the simulator, the flooding experiment quantify
//! the LiPRoMi window analytically, and users size `P_base` without
//! running traces.

use crate::time_varying::WeightMode;
use crate::weight::log_weight;

/// Analytic model of one hammered row under a TiVaPRoMi variant.
///
/// ```
/// use tivapromi::{HammerModel, WeightMode};
///
/// // A full-rate flood against LiPRoMi, starting right after refresh:
/// let model = HammerModel::paper_flood(WeightMode::Linear, 165.0);
/// let first = model.expected_first_trigger_acts();
/// // The paper's §IV ballpark: tens of thousands of activations.
/// assert!(first > 20_000.0 && first < 69_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HammerModel {
    /// Activations of the row per refresh interval.
    pub rate_per_interval: f64,
    /// Weight shaping of the variant under analysis.
    pub mode: WeightMode,
    /// `P_base` exponent (paper: 23).
    pub p_base_exponent: u32,
    /// Weight at the moment the hammering starts (0 = worst case,
    /// right after the row's refresh).
    pub start_weight: u32,
}

impl HammerModel {
    /// The paper configuration for a flood at the worst-case phase.
    pub fn paper_flood(mode: WeightMode, rate_per_interval: f64) -> Self {
        HammerModel {
            rate_per_interval,
            mode,
            p_base_exponent: crate::P_BASE_EXPONENT,
            start_weight: 0,
        }
    }

    fn shaped_weight(&self, w: u32) -> f64 {
        match self.mode {
            WeightMode::Linear => f64::from(w),
            // The hybrid behaves logarithmically until the first trigger
            // inserts the row into the history table, which is the
            // regime this first-trigger model covers.
            WeightMode::Logarithmic | WeightMode::Hybrid => f64::from(log_weight(w)),
        }
    }

    /// Per-activation trigger probability during interval
    /// `intervals_elapsed` after the hammering started.
    pub fn probability_at(&self, intervals_elapsed: u32) -> f64 {
        let w = self.start_weight.saturating_add(intervals_elapsed);
        self.shaped_weight(w) * (2f64).powi(-(self.p_base_exponent as i32))
    }

    /// Expected number of triggers within the first `intervals` refresh
    /// intervals of hammering.
    pub fn expected_triggers(&self, intervals: u32) -> f64 {
        (0..intervals)
            .map(|i| self.rate_per_interval * self.probability_at(i))
            .sum()
    }

    /// Probability that *no* trigger happens within the first
    /// `intervals` refresh intervals (the per-attempt failure
    /// probability of a flooding attack that needs that long).
    pub fn failure_probability(&self, intervals: u32) -> f64 {
        // Π (1-p)^r ≈ exp(Σ r · ln(1-p)); the probabilities are ≤ 1e-3,
        // so the log expansion is numerically exact here.
        let log_p: f64 = (0..intervals)
            .map(|i| self.rate_per_interval * (1.0 - self.probability_at(i)).ln())
            .sum();
        log_p.exp()
    }

    /// Expected activation count of the first trigger: the mean of the
    /// first-success time of the inhomogeneous process, computed by
    /// direct summation until the survival mass is exhausted.
    pub fn expected_first_trigger_acts(&self) -> f64 {
        let mut survival = 1.0f64;
        let mut expected = 0.0f64;
        let mut interval = 0u32;
        // Survival decays at least geometrically once the weight
        // saturates, so this converges quickly.
        while survival > 1e-9 && interval < 1 << 20 {
            let p = self.probability_at(interval).min(1.0);
            // Within the interval the row is activated `rate` times,
            // each an independent Bernoulli(p) trial.
            let interval_survive = (1.0 - p).powf(self.rate_per_interval);
            expected += survival * self.rate_per_interval;
            survival *= interval_survive;
            interval += 1;
        }
        expected
    }
}

/// Tail analysis of the *retrigger* process: after a trigger inserts the
/// hammered row into the history table, its weight regrows from zero
/// under the variant's shaping.  A victim flips if a single retrigger
/// gap exceeds the flip horizon (`th_RH / rate` activations); this
/// computes that per-gap probability and the per-window failure
/// probability — the analytic form of the linear-regrowth tail finding
/// documented in the flooding experiment.
///
/// ```
/// use tivapromi::analysis::RetriggerTail;
/// use tivapromi::WeightMode;
///
/// let li = RetriggerTail::paper(WeightMode::Linear);
/// let lo = RetriggerTail::paper(WeightMode::Logarithmic);
/// // Linear regrowth leaves a percent-class per-window flip tail under
/// // sustained flooding; logarithmic regrowth closes it.
/// assert!(li.flip_probability_per_window() > 10.0 * lo.flip_probability_per_window());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetriggerTail {
    /// The hammering model after a trigger (start weight 0).
    pub model: HammerModel,
    /// Flip threshold of the device (paper: 139 000).
    pub flip_threshold: u32,
    /// Refresh intervals per window (paper: 8192).
    pub ref_int: u32,
}

impl RetriggerTail {
    /// The paper configuration for a given weight mode at the full
    /// flooding rate.
    pub fn paper(mode: WeightMode) -> Self {
        RetriggerTail {
            model: HammerModel::paper_flood(mode, 165.0),
            flip_threshold: 139_000,
            ref_int: 8192,
        }
    }

    /// The flip horizon in refresh intervals: how long one retrigger gap
    /// must last for a victim to reach the threshold.
    // Threshold / rate is a few thousand intervals, far inside u32.
    #[allow(clippy::cast_possible_truncation)]
    pub fn horizon_intervals(&self) -> u32 {
        (f64::from(self.flip_threshold) / self.model.rate_per_interval).ceil() as u32
    }

    /// Probability that one retrigger gap exceeds the flip horizon.
    pub fn gap_exceeds_horizon(&self) -> f64 {
        self.model.failure_probability(self.horizon_intervals())
    }

    /// Expected retrigger gaps per refresh window.
    pub fn gaps_per_window(&self) -> f64 {
        let mean_gap_acts = self.model.expected_first_trigger_acts();
        let window_acts = self.model.rate_per_interval * f64::from(self.ref_int);
        window_acts / mean_gap_acts.max(1.0)
    }

    /// Per-window flip probability under sustained flooding:
    /// `1 − (1 − p_gap)^gaps` (gaps are independent — each starts from
    /// weight zero).
    pub fn flip_probability_per_window(&self) -> f64 {
        let p = self.gap_exceeds_horizon();
        1.0 - (1.0 - p).powf(self.gaps_per_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TivaConfig;
    use crate::mitigation::Mitigation;
    use crate::time_varying::TimeVarying;
    use dram_sim::{BankId, Geometry, RowAddr};

    #[test]
    fn probability_grows_linearly_and_logarithmically() {
        let li = HammerModel::paper_flood(WeightMode::Linear, 165.0);
        let lo = HammerModel::paper_flood(WeightMode::Logarithmic, 165.0);
        assert_eq!(li.probability_at(0), 0.0);
        assert!(lo.probability_at(0) > 0.0, "log weight of 0 is 1");
        assert!(lo.probability_at(100) >= li.probability_at(100));
        // Logarithmic is at most 2× linear for w ≥ 1.
        assert!(lo.probability_at(1000) <= 2.0 * li.probability_at(1000) + 1e-12);
    }

    #[test]
    fn expected_triggers_accumulate_quadratically_for_linear() {
        let m = HammerModel::paper_flood(WeightMode::Linear, 165.0);
        let e100 = m.expected_triggers(100);
        let e200 = m.expected_triggers(200);
        let ratio = e200 / e100;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn failure_probability_is_consistent_with_expectation() {
        // For small cumulative expectation λ, P(no trigger) ≈ e^-λ.
        let m = HammerModel::paper_flood(WeightMode::Linear, 165.0);
        let lambda = m.expected_triggers(300);
        let failure = m.failure_probability(300);
        assert!((failure - (-lambda).exp()).abs() < 1e-3);
    }

    #[test]
    fn linear_flooding_window_is_wider_than_logarithmic() {
        let li = HammerModel::paper_flood(WeightMode::Linear, 165.0);
        let lo = HammerModel::paper_flood(WeightMode::Logarithmic, 165.0);
        let li_first = li.expected_first_trigger_acts();
        let lo_first = lo.expected_first_trigger_acts();
        assert!(li_first > lo_first, "Li {li_first} vs Lo {lo_first}");
        // Both well below the 69 K safety bound in expectation.
        assert!(li_first < 69_000.0);
    }

    #[test]
    fn analytic_first_trigger_matches_simulation() {
        // Cross-validation: simulate the flooding process many times and
        // compare the mean first trigger with the analytic expectation.
        let geometry = Geometry::paper().with_banks(1);
        let config = TivaConfig::paper(&geometry);
        let model = HammerModel::paper_flood(WeightMode::Linear, 165.0);
        let analytic = model.expected_first_trigger_acts();

        let mut total = 0.0f64;
        let runs = 40;
        for seed in 0..runs {
            let mut m = TimeVarying::lipromi(config, seed);
            let mut actions = Vec::new();
            let mut acts = 0u64;
            'run: loop {
                for _ in 0..165 {
                    acts += 1;
                    m.on_activate(BankId(0), RowAddr(1), &mut actions);
                    if !actions.is_empty() {
                        break 'run;
                    }
                }
                m.on_refresh_interval(&mut actions);
            }
            total += acts as f64;
        }
        let simulated = total / runs as f64;
        let rel = (simulated - analytic).abs() / analytic;
        assert!(
            rel < 0.25,
            "simulated {simulated} vs analytic {analytic} (rel {rel:.2})"
        );
    }

    #[test]
    fn start_weight_shrinks_the_window() {
        let worst = HammerModel::paper_flood(WeightMode::Linear, 165.0);
        let mid = HammerModel {
            start_weight: 4096,
            ..worst
        };
        assert!(mid.expected_first_trigger_acts() < worst.expected_first_trigger_acts() / 10.0);
    }

    #[test]
    fn linear_tail_is_orders_above_logarithmic() {
        let li = RetriggerTail::paper(WeightMode::Linear);
        let lo = RetriggerTail::paper(WeightMode::Logarithmic);
        assert_eq!(li.horizon_intervals(), 843);
        let li_window = li.flip_probability_per_window();
        let lo_window = lo.flip_probability_per_window();
        // The measured finding: a few percent per window for linear
        // regrowth, orders of magnitude less for logarithmic.
        assert!(li_window > 0.005 && li_window < 0.2, "Li {li_window}");
        assert!(
            lo_window < li_window / 10.0,
            "Lo {lo_window} vs Li {li_window}"
        );
    }

    #[test]
    fn tail_matches_expected_trigger_exponential() {
        let li = RetriggerTail::paper(WeightMode::Linear);
        let lambda = li.model.expected_triggers(li.horizon_intervals());
        let p = li.gap_exceeds_horizon();
        assert!((p - (-lambda).exp()).abs() / p < 0.05, "p {p} vs e^-λ");
    }
}
