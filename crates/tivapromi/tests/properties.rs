//! Property-based tests for the TiVaPRoMi core: weight equations,
//! table invariants, and variant behaviour.

use dram_sim::{BankId, Geometry, RowAddr};
use proptest::prelude::*;
use rand::SeedableRng;
use tivapromi::{
    linear_weight, log_weight, CaPromi, CounterTable, HistoryPolicy, HistoryTable, Mitigation,
    TimeVarying, TivaConfig,
};

proptest! {
    /// Eq. 1 always lands in [0, RefInt−1], and adding the weight to the
    /// base interval modulo RefInt recovers the current interval.
    #[test]
    fn linear_weight_is_a_modular_distance(
        i in 0u32..8192,
        f_r in 0u32..8192,
    ) {
        let w = linear_weight(i, f_r, 8192);
        prop_assert!(w < 8192);
        prop_assert_eq!((f_r + w) % 8192, i);
    }

    /// Eq. 2 yields the smallest power of two ≥ w + 1.
    #[test]
    fn log_weight_is_tight_power_of_two(w in 0u32..8192) {
        let wl = log_weight(w);
        prop_assert!(wl.is_power_of_two());
        prop_assert!(wl > w);
        prop_assert!(wl < 2 * (w + 1));
    }

    /// Eq. 2 is monotone non-decreasing.
    #[test]
    fn log_weight_is_monotone(w in 0u32..8191) {
        prop_assert!(log_weight(w) <= log_weight(w + 1));
    }

    /// The history table never exceeds capacity, and a just-recorded row
    /// is always found with its interval — under both policies.
    #[test]
    fn history_table_capacity_and_membership(
        capacity in 1usize..16,
        lru in any::<bool>(),
        ops in proptest::collection::vec((0u32..64, 0u32..8192), 1..200),
    ) {
        let policy = if lru { HistoryPolicy::Lru } else { HistoryPolicy::Fifo };
        let mut table = HistoryTable::with_policy(capacity, policy);
        for (row, interval) in ops {
            table.record(RowAddr(row), interval);
            prop_assert!(table.len() <= capacity);
            prop_assert_eq!(table.lookup(RowAddr(row)), Some(interval));
            // No duplicates: position is unique.
            let matches = table.iter().filter(|(r, _)| *r == RowAddr(row)).count();
            prop_assert_eq!(matches, 1);
        }
    }

    /// FIFO semantics: with distinct rows, the surviving membership is
    /// exactly the last `capacity` recorded rows.
    #[test]
    fn history_fifo_keeps_newest(capacity in 1usize..8, n in 1u32..40) {
        let mut table = HistoryTable::new(capacity);
        for row in 0..n {
            table.record(RowAddr(row), row);
        }
        for row in 0..n {
            let expect_present = row + (capacity as u32) >= n;
            prop_assert_eq!(
                table.lookup(RowAddr(row)).is_some(),
                expect_present,
                "row {} of {} cap {}", row, n, capacity
            );
        }
    }

    /// Locked counter-table entries survive arbitrary insertion pressure.
    #[test]
    fn locked_counter_entries_are_immortal(
        pressure in proptest::collection::vec(100u32..1000, 0..300),
        lock_threshold in 1u32..8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut table = CounterTable::new(4, lock_threshold);
        // Lock row 7.
        for _ in 0..lock_threshold {
            table.observe(RowAddr(7), None, &mut rng);
        }
        prop_assert!(table.entry(RowAddr(7)).unwrap().locked);
        for row in pressure {
            table.observe(RowAddr(row), None, &mut rng);
            prop_assert!(table.entry(RowAddr(7)).is_some());
            prop_assert!(table.len() <= 4);
        }
    }

    /// Counter-table counts equal the number of observations of that row
    /// while it stayed resident.
    #[test]
    fn counter_counts_match_observations(rows in proptest::collection::vec(0u32..3, 0..100)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut table = CounterTable::new(8, 1000);
        let mut expected = [0u32; 3];
        for row in rows {
            table.observe(RowAddr(row), None, &mut rng);
            expected[row as usize] += 1;
        }
        // Capacity 8 > 3 distinct rows: nothing was ever evicted.
        for row in 0..3u32 {
            let got = table.entry(RowAddr(row)).map_or(0, |e| e.count);
            prop_assert_eq!(got, expected[row as usize]);
        }
    }

    /// A TimeVarying trigger is only possible with a positive weight:
    /// activating the row currently at weight zero never fires.
    #[test]
    fn zero_weight_never_triggers(seed in any::<u64>()) {
        let geometry = Geometry::paper().with_banks(1);
        let mut m = TimeVarying::lipromi(TivaConfig::paper(&geometry), seed);
        let mut actions = Vec::new();
        // Row 0 has f_r = 0 = current interval → weight 0.
        for _ in 0..5000 {
            m.on_activate(BankId(0), RowAddr(0), &mut actions);
        }
        prop_assert!(actions.is_empty());
    }

    /// CaPRoMi never acts on the activation path, for arbitrary traffic.
    #[test]
    fn capromi_act_path_is_silent(
        rows in proptest::collection::vec(0u32..65_536, 1..500),
        seed in any::<u64>(),
    ) {
        let geometry = Geometry::paper().with_banks(1);
        let mut m = CaPromi::new(TivaConfig::paper(&geometry), seed);
        let mut actions = Vec::new();
        for row in rows {
            m.on_activate(BankId(0), RowAddr(row), &mut actions);
            prop_assert!(actions.is_empty());
        }
    }

    /// The trigger count statistic equals the number of emitted actions,
    /// for any mix of activations and interval boundaries.
    #[test]
    fn trigger_count_matches_actions(
        script in proptest::collection::vec((0u32..65_536, any::<bool>()), 1..400),
        seed in any::<u64>(),
    ) {
        let geometry = Geometry::paper().with_banks(1);
        let mut m = TimeVarying::lopromi(TivaConfig::paper(&geometry), seed);
        let mut actions = Vec::new();
        let mut emitted = 0u64;
        for (row, refresh) in script {
            if refresh {
                m.on_refresh_interval(&mut actions);
            } else {
                m.on_activate(BankId(0), RowAddr(row), &mut actions);
            }
            emitted += actions.len() as u64;
            actions.clear();
        }
        prop_assert_eq!(m.trigger_count(), emitted);
    }
}
